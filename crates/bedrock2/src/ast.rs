//! Abstract syntax of Bedrock2.

use std::collections::BTreeMap;
use std::fmt;

/// The byte width of a memory access. Bedrock2, like the paper's version,
/// supports 1-, 2-, and 4-byte loads and stores on a 32-bit machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Size {
    /// One byte.
    One,
    /// Two bytes.
    Two,
    /// Four bytes (a full word).
    Four,
}

impl Size {
    /// The width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Size::One => 1,
            Size::Two => 2,
            Size::Four => 4,
        }
    }

    /// Mask selecting the low `bytes()` bytes of a word.
    pub fn mask(self) -> u32 {
        match self {
            Size::One => 0xFF,
            Size::Two => 0xFFFF,
            Size::Four => u32::MAX,
        }
    }
}

/// Binary operators of the expression language. This is exactly the paper's
/// operator set: note the absence of signed division (RISC-V `div` can be
/// recovered from `divu` and sign fixups in source code where needed) and
/// the presence of both signed and unsigned comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// High 32 bits of the unsigned product.
    MulHuu,
    /// Unsigned division; division by zero yields the RISC-V result.
    DivU,
    /// Unsigned remainder; remainder by zero yields the RISC-V result.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift right (shift amount masked to 5 bits).
    Sru,
    /// Shift left (shift amount masked to 5 bits).
    Slu,
    /// Arithmetic shift right (shift amount masked to 5 bits).
    Srs,
    /// Signed less-than; yields 0 or 1.
    Lts,
    /// Unsigned less-than; yields 0 or 1.
    Ltu,
    /// Equality; yields 0 or 1.
    Eq,
}

impl BinOp {
    /// Evaluates the operator on concrete words.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        use riscv_spec::word;
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::MulHuu => word::mulhu(a, b),
            BinOp::DivU => word::divu(a, b),
            BinOp::RemU => word::remu(a, b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Sru => word::srl(a, b),
            BinOp::Slu => word::sll(a, b),
            BinOp::Srs => word::sra(a, b),
            BinOp::Lts => word::lts(a, b) as u32,
            BinOp::Ltu => word::ltu(a, b) as u32,
            BinOp::Eq => (a == b) as u32,
        }
    }

    /// The C-like operator symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::MulHuu => "*h",
            BinOp::DivU => "/",
            BinOp::RemU => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Sru => ">>",
            BinOp::Slu => "<<",
            BinOp::Srs => ">>s",
            BinOp::Lts => "<s",
            BinOp::Ltu => "<",
            BinOp::Eq => "==",
        }
    }

    /// All operators, for generators and exhaustive tests.
    pub const ALL: [BinOp; 15] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::MulHuu,
        BinOp::DivU,
        BinOp::RemU,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Sru,
        BinOp::Slu,
        BinOp::Srs,
        BinOp::Lts,
        BinOp::Ltu,
        BinOp::Eq,
    ];
}

/// An expression. Expressions are pure except for `Load`, which reads the
/// current memory (and whose out-of-bounds behavior is undefined).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A word literal.
    Literal(u32),
    /// A local variable; reading an unbound variable is undefined behavior.
    Var(String),
    /// A memory load of the given width, zero-extended to a word.
    Load(Size, Box<Expr>),
    /// A binary operation.
    Op(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All variables read by this expression, in evaluation order (with
    /// duplicates).
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Var(x) => out.push(x),
            Expr::Load(_, e) => e.collect_vars(out),
            Expr::Op(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// True when the expression contains no loads (is pure in memory).
    pub fn is_pure(&self) -> bool {
        match self {
            Expr::Literal(_) | Expr::Var(_) => true,
            Expr::Load(..) => false,
            Expr::Op(_, a, b) => a.is_pure() && b.is_pure(),
        }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Does nothing.
    Skip,
    /// `x = e`.
    Set(String, Expr),
    /// `store<size>(addr, value)`.
    Store(Size, Expr, Expr),
    /// `if (cond != 0) { then } else { else }`.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// `while (cond != 0) { body }`.
    While(Expr, Box<Stmt>),
    /// Sequential composition.
    Block(Vec<Stmt>),
    /// `r1, …, rn = f(a1, …, am)` — a call to a Bedrock2-defined function
    /// (the language supports returning tuples).
    Call(Vec<String>, String, Vec<Expr>),
    /// `r1, …, rn = ext!f(a1, …, am)` — a call to an *external* procedure,
    /// recorded in the interaction trace; its behavior is a parameter of
    /// the semantics (§6.1). For the lightbulb, the instances are
    /// `MMIOREAD` and `MMIOWRITE`.
    Interact(Vec<String>, String, Vec<Expr>),
    /// `x = stackalloc(n); { body }` — allocates `n` bytes (rounded up to a
    /// word multiple) with an *unspecified* address, the paper's example of
    /// internal nondeterminism in the compiler's semantics (§5.3).
    Stackalloc(String, u32, Box<Stmt>),
}

impl Stmt {
    /// Number of AST nodes, used by inlining heuristics and test generators.
    pub fn size(&self) -> usize {
        match self {
            Stmt::Skip | Stmt::Set(..) | Stmt::Store(..) | Stmt::Call(..) | Stmt::Interact(..) => 1,
            Stmt::If(_, t, e) => 1 + t.size() + e.size(),
            Stmt::While(_, b) => 1 + b.size(),
            Stmt::Block(ss) => 1 + ss.iter().map(Stmt::size).sum::<usize>(),
            Stmt::Stackalloc(_, _, b) => 1 + b.size(),
        }
    }

    /// Names of all Bedrock2 functions this statement calls (transitively
    /// within this statement only).
    pub fn callees(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_callees(&mut out);
        out
    }

    fn collect_callees<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stmt::Call(_, f, _) => out.push(f),
            Stmt::If(_, t, e) => {
                t.collect_callees(out);
                e.collect_callees(out);
            }
            Stmt::While(_, b) | Stmt::Stackalloc(_, _, b) => b.collect_callees(out),
            Stmt::Block(ss) => ss.iter().for_each(|s| s.collect_callees(out)),
            _ => {}
        }
    }
}

/// A function definition. Parameters and returns are (lists of) word-typed
/// variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Parameter names, bound on entry.
    pub params: Vec<String>,
    /// Names of the locals whose final values are returned.
    pub rets: Vec<String>,
    /// The body.
    pub body: Stmt,
}

impl Function {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, params: &[&str], rets: &[&str], body: Stmt) -> Function {
        Function {
            name: name.into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            rets: rets.iter().map(|s| s.to_string()).collect(),
            body,
        }
    }
}

/// A whole program: a set of named functions (no globals, no mutual
/// dependence on compilation units — §5.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Functions by name, ordered for deterministic compilation.
    pub functions: BTreeMap<String, Function>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Builds a program from an iterator of functions.
    ///
    /// # Panics
    ///
    /// Panics if two functions share a name.
    pub fn from_functions<I: IntoIterator<Item = Function>>(funcs: I) -> Program {
        let mut p = Program::new();
        for f in funcs {
            p.add(f);
        }
        p
    }

    /// Adds a function.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add(&mut self, f: Function) {
        let prev = self.functions.insert(f.name.clone(), f);
        assert!(prev.is_none(), "duplicate function definition");
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Checks that every `Call` targets a defined function with matching
    /// arity, and that there is no (mutual) recursion. Returns the list of
    /// problems found, empty when the program is well-formed.
    pub fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for f in self.functions.values() {
            self.check_stmt(f, &f.body, &mut problems);
            if self.reaches(&f.name, &f.name, &mut Vec::new()) {
                problems.push(format!("function '{}' is (mutually) recursive", f.name));
            }
        }
        problems
    }

    fn check_stmt(&self, f: &Function, s: &Stmt, problems: &mut Vec<String>) {
        match s {
            Stmt::Call(rets, callee, args) => match self.functions.get(callee) {
                None => problems.push(format!("'{}' calls undefined '{}'", f.name, callee)),
                Some(c) => {
                    if c.params.len() != args.len() || c.rets.len() != rets.len() {
                        problems.push(format!(
                            "'{}' calls '{}' with arity {}→{}, expected {}→{}",
                            f.name,
                            callee,
                            args.len(),
                            rets.len(),
                            c.params.len(),
                            c.rets.len()
                        ));
                    }
                }
            },
            Stmt::If(_, t, e) => {
                self.check_stmt(f, t, problems);
                self.check_stmt(f, e, problems);
            }
            Stmt::While(_, b) | Stmt::Stackalloc(_, _, b) => self.check_stmt(f, b, problems),
            Stmt::Block(ss) => ss.iter().for_each(|s| self.check_stmt(f, s, problems)),
            _ => {}
        }
    }

    fn reaches(&self, from: &str, target: &str, visiting: &mut Vec<String>) -> bool {
        let Some(f) = self.functions.get(from) else {
            return false;
        };
        for callee in f.body.callees() {
            if callee == target {
                return true;
            }
            if !visiting.iter().any(|v| v == callee) {
                visiting.push(callee.to_string());
                if self.reaches(callee, target, visiting) {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in self.functions.values() {
            writeln!(f, "{}", crate::display::render_function(func))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn binop_eval_matches_riscv_word_ops() {
        assert_eq!(BinOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(BinOp::DivU.eval(7, 0), u32::MAX);
        assert_eq!(BinOp::RemU.eval(7, 0), 7);
        assert_eq!(BinOp::Lts.eval(u32::MAX, 0), 1);
        assert_eq!(BinOp::Ltu.eval(u32::MAX, 0), 0);
        assert_eq!(BinOp::Eq.eval(3, 3), 1);
        assert_eq!(BinOp::Srs.eval(0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn expr_vars_in_order() {
        let e = add(var("a"), load4(add(var("b"), var("a"))));
        assert_eq!(e.vars(), vec!["a", "b", "a"]);
        assert!(!e.is_pure());
        assert!(add(var("a"), lit(1)).is_pure());
    }

    #[test]
    fn program_check_catches_undefined_and_arity() {
        let f = Function::new("f", &["x"], &[], call(&[], "g", [var("x"), lit(1)]));
        let g = Function::new("g", &["a"], &[], Stmt::Skip);
        let p = Program::from_functions([f, g]);
        let problems = p.check();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("arity"));
    }

    #[test]
    fn program_check_catches_recursion() {
        let f = Function::new("f", &[], &[], call(&[], "g", []));
        let g = Function::new("g", &[], &[], call(&[], "f", []));
        let p = Program::from_functions([f, g]);
        let problems = p.check();
        assert!(
            problems.iter().any(|m| m.contains("recursive")),
            "{problems:?}"
        );
    }

    #[test]
    fn well_formed_program_checks_clean() {
        let leaf = Function::new("leaf", &["x"], &["y"], set("y", add(var("x"), lit(1))));
        let main = Function::new("main", &[], &["r"], call(&["r"], "leaf", [lit(41)]));
        assert!(Program::from_functions([leaf, main]).check().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate function definition")]
    fn duplicate_functions_panic() {
        Program::from_functions([
            Function::new("f", &[], &[], Stmt::Skip),
            Function::new("f", &[], &[], Stmt::Skip),
        ]);
    }

    #[test]
    fn stmt_size_and_callees() {
        let s = block([
            set("x", lit(1)),
            if_(var("x"), call(&[], "f", []), Stmt::Skip),
            while_(var("x"), call(&[], "g", [])),
        ]);
        assert_eq!(s.callees(), vec!["f", "g"]);
        assert!(s.size() >= 6);
    }
}

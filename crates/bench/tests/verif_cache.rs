//! Cross-process persistence of the verification cache: a cold
//! `verif_perf` run populates the `verif-cache/v1` store, and later
//! processes that reload it must (a) re-prove nothing and (b) produce
//! byte-identical `--json` output in `--stable` mode — the executable
//! analogue of rebuilding a Coq development against unchanged `.vo` files.

use obs::json::{parse, Value};
use std::fs;
use std::path::Path;
use std::process::Command;

fn run_verif_perf(cache: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_verif_perf"))
        .args(["--json", "--stable", "--engine-only", "--cache"])
        .arg(cache)
        .output()
        .expect("spawning verif_perf");
    assert!(
        out.status.success(),
        "verif_perf failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("verif_perf output is UTF-8")
}

fn engine_field<'a>(doc: &'a Value, path: &[&str]) -> &'a Value {
    let mut v = doc.get("data").expect("data");
    for key in path {
        v = v
            .get(key)
            .unwrap_or_else(|| panic!("missing field {key} in {path:?}"));
    }
    v
}

#[test]
fn persisted_cache_reloads_across_processes() {
    let dir = std::env::temp_dir().join(format!("verif-cache-test-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("cache.json");
    let bench_record = bench::workspace_root().join("BENCH_verif_perf.json");
    let record_before = fs::read(&bench_record).ok();

    // Process 1: cold — no store on disk yet, every obligation is solved.
    let cold = run_verif_perf(&cache);
    let cold_doc = parse(&cold).expect("cold output parses");
    assert_eq!(
        engine_field(&cold_doc, &["engine", "preloaded"]),
        &Value::UInt(0),
        "first process must start cold"
    );
    let solved = engine_field(&cold_doc, &["engine", "cold", "misses"]);
    assert!(matches!(solved, Value::UInt(n) if *n > 0), "{solved:?}");
    assert!(cache.exists(), "the store must be written on exit");

    // Process 2: the reloaded store answers everything.
    let warm1 = run_verif_perf(&cache);
    let warm_doc = parse(&warm1).expect("warm output parses");
    let preloaded = engine_field(&warm_doc, &["engine", "preloaded"]);
    assert!(
        matches!(preloaded, Value::UInt(n) if *n > 0),
        "second process must reload the store, got {preloaded:?}"
    );
    assert_eq!(
        engine_field(&warm_doc, &["engine", "cold", "misses"]),
        &Value::UInt(0),
        "a reloaded cache must re-prove nothing"
    );
    assert_eq!(
        engine_field(&warm_doc, &["engine", "proved"]),
        engine_field(&cold_doc, &["engine", "proved"]),
        "outcomes must not change across processes"
    );

    // Process 3: identical cache state, byte-identical output.
    let warm2 = run_verif_perf(&cache);
    assert_eq!(
        warm1, warm2,
        "two warm processes over the same store must emit identical bytes"
    );

    // `--stable` must never touch the committed bench record.
    assert_eq!(
        fs::read(&bench_record).ok(),
        record_before,
        "--stable must not rewrite BENCH_verif_perf.json"
    );

    fs::remove_dir_all(&dir).ok();
}

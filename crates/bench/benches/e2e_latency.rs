//! End-to-end latency (§7.2.1): wall-clock cost of measuring one
//! packet→actuation latency on the two extreme configurations of the
//! evaluation grid. The *simulated-cycle* decomposition itself (the
//! figure) is produced by the `fig_perf` binary; this bench tracks the
//! harness's own speed so regressions in the simulators show up.

use criterion::{criterion_group, criterion_main, Criterion};
use lightbulb_system::integration::{ProcessorKind, SystemConfig};
use lightbulb_system::lightbulb::DriverOptions;

fn bench_latency(c: &mut Criterion) {
    let verified = SystemConfig::default();
    let prototype = SystemConfig {
        driver: DriverOptions {
            timeouts: false,
            pipelined_spi: true,
        },
        optimize: true,
        processor: ProcessorKind::SingleCycle,
        ..SystemConfig::default()
    };

    let mut g = c.benchmark_group("packet_to_actuation");
    g.sample_size(10);
    g.bench_function("verified_config", |b| {
        b.iter(|| bench::packet_to_actuation_latency(&verified, 42).cycles())
    });
    g.bench_function("prototype_analogue", |b| {
        b.iter(|| bench::packet_to_actuation_latency(&prototype, 42).cycles())
    });
    g.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);

//! Verification-machinery performance (§7.2.2): the prover, the symbolic
//! executor, and the refinement checker under the microscope.

use criterion::{criterion_group, criterion_main, Criterion};
use lightbulb_system::integration::debug_dev::DebugDevice;
use lightbulb_system::integration::progen::ProgGen;
use lightbulb_system::processor::{check_refinement, PipelineConfig};
use lightbulb_system::proglogic::symexec::{MmioExtSpec, SymExec};
use lightbulb_system::proglogic::{prove, Formula, Term};

fn bench_solver(c: &mut Criterion) {
    // The §6.1-style obligation: a buffer bound flowing through
    // arithmetic.
    let len = Term::var(0, "len");
    let assms = [Formula::ltu(&len, &Term::constant(1520))];
    let padded = Term::op(
        bedrock2::ast::BinOp::Mul,
        &Term::op(
            bedrock2::ast::BinOp::DivU,
            &len.add_const(3),
            &Term::constant(4),
        ),
        &Term::constant(4),
    );
    let goal = Formula::ltu(&padded, &Term::constant(2048));
    c.bench_function("solver_buffer_bound", |b| b.iter(|| prove(&assms, &goal)));
}

fn bench_symexec(c: &mut Criterion) {
    use bedrock2::dsl::*;
    use bedrock2::{Function, Program};
    let f = Function::new(
        "wr",
        &["p"],
        &["r"],
        block([
            store4(var("p"), lit(7)),
            // Initialize the second word so the byte store folds to a
            // constant (symbolic-word byte extraction is provable for
            // safety, not for exact values).
            store4(add(var("p"), lit(4)), lit(0x1122_3344)),
            store1(add(var("p"), lit(5)), lit(0xAA)),
            set("r", add(load4(var("p")), load1(add(var("p"), lit(5))))),
        ]),
    );
    let prog = Program::from_functions([f]);
    let se = SymExec::new(
        &prog,
        MmioExtSpec {
            ranges: lightbulb_system::lightbulb::layout::mmio_ranges(),
        },
    );
    c.bench_function("symexec_memory_roundtrip", |b| {
        b.iter(|| {
            se.check_function(
                "wr",
                |st| vec![st.add_region("buf", 8)],
                |_st, rets| vec![Formula::eq(&rets[0], &Term::constant(7 + 0xAA))],
            )
            .unwrap()
            .obligations
        })
    });
}

fn bench_refinement(c: &mut Criterion) {
    use lightbulb_system::compiler::{compile, CompileOptions, MmioExtCompiler};
    let prog = ProgGen::new(17).gen_program();
    let image = compile(&prog, &MmioExtCompiler, &CompileOptions::default())
        .expect("generated program compiles");
    let bytes = image.bytes();
    let mut g = c.benchmark_group("refinement_check");
    g.sample_size(10);
    g.bench_function("random_program", |b| {
        b.iter(|| {
            check_refinement(
                &bytes,
                0x1_0000,
                DebugDevice::new(),
                DebugDevice::claims,
                PipelineConfig::default(),
                10_000_000,
            )
            .unwrap()
            .events
        })
    });
    g.finish();
}

criterion_group!(benches, bench_solver, bench_symexec, bench_refinement);
criterion_main!(benches);

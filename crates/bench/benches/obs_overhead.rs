//! The telemetry zero-overhead claim, measured (A/B): the pipeline hot
//! loop with the default `NullSink` must cost the same as an
//! un-instrumented build.
//!
//! `Sink` is statically dispatched and `NullSink::ENABLED` is `false`, so
//! every `if S::ENABLED { sink.emit(..) }` block is dead code and the
//! monomorphized `Pipelined<_, NullSink>` is the un-instrumented loop —
//! `baseline` and `null_sink` below compile to the same machine code, and
//! the A/B bounds their measured difference (pure noise) by the 2% budget.
//! `mem_sink` shows what turning tracing *on* actually costs, for scale.
//!
//! Run with `cargo bench --bench obs_overhead`; the process exits nonzero
//! if the disabled path exceeds the budget.

use criterion::{BatchSize, Criterion};
use lightbulb_system::devices::{Board, SpiConfig};
use lightbulb_system::integration::{build_image, SystemConfig};
use lightbulb_system::processor::{PipelineConfig, Pipelined};
use obs::MemSink;

const CYCLES: u64 = 50_000;
/// Allowed `null_sink / baseline` excess — the ISSUE's 2% budget.
const BUDGET: f64 = 0.02;

fn run_null(bytes: &[u8]) -> Pipelined<Board> {
    Pipelined::new(
        bytes,
        0x1_0000,
        Board::new(SpiConfig::default()),
        PipelineConfig::default(),
    )
}

fn bench_overhead(c: &mut Criterion) {
    let image = build_image(&SystemConfig::default());
    let bytes = image.bytes();

    // Global warm-up outside the measurement: the first group measured
    // would otherwise absorb page faults and frequency ramp-up, showing
    // up as a phantom difference between identical loops.
    for _ in 0..3 {
        let mut cpu = run_null(&bytes);
        cpu.run(CYCLES);
        criterion::black_box(cpu.cycle);
    }

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(40);

    // A: the hot loop as every existing caller gets it (NullSink default).
    g.bench_function("baseline", |b| {
        b.iter_batched(
            || run_null(&bytes),
            |mut cpu| {
                cpu.run(CYCLES);
                cpu.cycle
            },
            BatchSize::SmallInput,
        )
    });

    // B: the same monomorphization again — any measured difference from A
    // is noise, which is exactly the claim under test.
    g.bench_function("null_sink", |b| {
        b.iter_batched(
            || run_null(&bytes),
            |mut cpu| {
                cpu.run(CYCLES);
                cpu.cycle
            },
            BatchSize::SmallInput,
        )
    });

    // For scale: the enabled path, buffering every event in memory.
    g.bench_function("mem_sink", |b| {
        b.iter_batched(
            || {
                Pipelined::with_sink(
                    &bytes,
                    0x1_0000,
                    Board::new(SpiConfig::default()),
                    PipelineConfig::default(),
                    MemSink::default(),
                )
            },
            |mut cpu| {
                cpu.run(CYCLES);
                (cpu.cycle, cpu.sink.events.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_overhead(&mut c);

    let base = c.median_ns("obs_overhead/baseline").expect("baseline ran");
    let null = c.median_ns("obs_overhead/null_sink").expect("null ran");
    let mem = c.median_ns("obs_overhead/mem_sink").expect("mem ran");

    let overhead = null / base - 1.0;
    println!();
    println!(
        "NullSink vs baseline: {:+.2}% (budget ±{:.0}%); \
         enabled MemSink costs {:+.2}%",
        overhead * 100.0,
        BUDGET * 100.0,
        (mem / base - 1.0) * 100.0
    );
    // One-sided: the claim under test is that NullSink adds no *overhead*;
    // measuring faster than the (identical) baseline is noise in our favor.
    assert!(
        overhead <= BUDGET,
        "disabled-path overhead {overhead:+.3} exceeds the {BUDGET} budget"
    );
    println!("OK: disabled telemetry is free on the pipeline hot loop");
}

//! Simulator throughput: wall-clock cost per simulated cycle for the
//! pipelined core, the single-cycle core, and the ISA spec machine, all
//! running the real lightbulb image against the board.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lightbulb_system::devices::{Board, SpiConfig};
use lightbulb_system::integration::{build_image, SystemConfig};
use lightbulb_system::processor::{PipelineConfig, Pipelined, SingleCycle};
use lightbulb_system::riscv::{Memory, SpecMachine};

const CYCLES: u64 = 50_000;

fn bench_simulators(c: &mut Criterion) {
    let image = build_image(&SystemConfig::default());
    let bytes = image.bytes();
    let words = image.words();

    let mut g = c.benchmark_group("simulate_50k_cycles");
    g.sample_size(20);

    g.bench_function("pipelined", |b| {
        b.iter_batched(
            || {
                Pipelined::new(
                    &bytes,
                    0x1_0000,
                    Board::new(SpiConfig::default()),
                    PipelineConfig::default(),
                )
            },
            |mut cpu| {
                cpu.run(CYCLES);
                cpu.cycle
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("single_cycle", |b| {
        b.iter_batched(
            || SingleCycle::new(&bytes, 0x1_0000, Board::new(SpiConfig::default())),
            |mut cpu| {
                cpu.run(CYCLES);
                cpu.cycle
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("spec_machine", |b| {
        b.iter_batched(
            || {
                let mut m = SpecMachine::new(
                    Memory::with_size(0x1_0000),
                    Board::new(SpiConfig::default()),
                );
                m.load_program(0, &words);
                m
            },
            |mut m| {
                let _ = m.run(CYCLES);
                m.instret
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);

//! BTB ablation (Figure 4's predictor, §5.5): simulated cycles to finish a
//! branch-heavy workload with and without the branch target buffer. The
//! ablation value (cycles saved) is printed once; criterion tracks the
//! harness cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lightbulb_system::compiler::{compile, CompileOptions, NoExtCompiler};
use lightbulb_system::processor::{PipelineConfig, Pipelined};
use lightbulb_system::riscv::NoMmio;

/// A branch-heavy workload: nested counted loops.
fn workload_image() -> Vec<u8> {
    use bedrock2::dsl::*;
    use bedrock2::{Function, Program};
    let main = Function::new(
        "main",
        &[],
        &["acc"],
        block([
            set("acc", lit(0)),
            set("i", lit(0)),
            while_(
                ltu(var("i"), lit(100)),
                block([
                    set("j", lit(0)),
                    while_(
                        ltu(var("j"), lit(20)),
                        block([
                            set("acc", add(var("acc"), var("j"))),
                            set("j", add(var("j"), lit(1))),
                        ]),
                    ),
                    set("i", add(var("i"), lit(1))),
                ]),
            ),
        ]),
    );
    compile(
        &Program::from_functions([main]),
        &NoExtCompiler,
        &CompileOptions::default(),
    )
    .unwrap()
    .bytes()
}

fn run_to_halt(image: &[u8], config: PipelineConfig) -> (u64, f64) {
    let mut cpu = Pipelined::new(image, 0x1_0000, NoMmio, config);
    cpu.run(10_000_000);
    assert!(cpu.halted, "workload must finish");
    (cpu.cycle, cpu.ipc())
}

fn bench_btb(c: &mut Criterion) {
    let image = workload_image();
    let with = run_to_halt(&image, PipelineConfig::default());
    let without = run_to_halt(
        &image,
        PipelineConfig {
            btb_bits: None,
            ..PipelineConfig::default()
        },
    );
    println!(
        "\nBTB ablation: with = {} cycles (IPC {:.2}), without = {} cycles (IPC {:.2}), speedup {:.2}x",
        with.0,
        with.1,
        without.0,
        without.1,
        without.0 as f64 / with.0 as f64
    );
    assert!(with.0 < without.0, "the BTB must pay for itself on loops");

    let mut g = c.benchmark_group("btb_ablation_sim_cost");
    g.sample_size(20);
    g.bench_function("with_btb", |b| {
        b.iter_batched(
            || image.clone(),
            |img| run_to_halt(&img, PipelineConfig::default()).0,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("without_btb", |b| {
        b.iter_batched(
            || image.clone(),
            |img| {
                run_to_halt(
                    &img,
                    PipelineConfig {
                        btb_bits: None,
                        ..PipelineConfig::default()
                    },
                )
                .0
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_btb);
criterion_main!(benches);

//! Compiler throughput: per-phase and whole-pipeline compile times for the
//! lightbulb sources (the analogue of the paper's build-time discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use lightbulb_system::compiler::{
    compile, flatten, opt, regalloc, CompileOptions, Entry, MmioExtCompiler,
};
use lightbulb_system::lightbulb::{lightbulb_program, DriverOptions};

fn options(optimize: bool) -> CompileOptions {
    CompileOptions {
        stack_top: 0x1_0000,
        stack_size: None,
        entry: Entry::EventLoop {
            init: Some("lightbulb_init".to_string()),
            step: "lightbulb_loop".to_string(),
        },
        optimize,
        spill_everything: false,
    }
}

fn bench_compiler(c: &mut Criterion) {
    let prog = lightbulb_program(DriverOptions::default());
    let flat = flatten::flatten_program(&prog);

    let mut g = c.benchmark_group("compile_lightbulb");
    g.bench_function("whole_pipeline_naive", |b| {
        b.iter(|| {
            compile(&prog, &MmioExtCompiler, &options(false))
                .unwrap()
                .insts
                .len()
        })
    });
    g.bench_function("whole_pipeline_optimizing", |b| {
        b.iter(|| {
            compile(&prog, &MmioExtCompiler, &options(true))
                .unwrap()
                .insts
                .len()
        })
    });
    g.bench_function("phase1_flatten", |b| {
        b.iter(|| flatten::flatten_program(&prog).functions.len())
    });
    g.bench_function("phase2_regalloc", |b| {
        b.iter(|| {
            flat.functions
                .values()
                .map(|f| regalloc::allocate(f).used_regs.len())
                .sum::<usize>()
        })
    });
    g.bench_function("optimizer_passes", |b| {
        b.iter(|| opt::optimize_program(&prog).functions.len())
    });
    g.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);

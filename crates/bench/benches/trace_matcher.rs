//! Trace-matcher performance: checking a real system trace against
//! `goodHlTrace` (full membership and prefix acceptance), the §7.2.2
//! analogue for the specification layer.

use criterion::{criterion_group, criterion_main, Criterion};
use lightbulb_system::devices::TrafficGen;
use lightbulb_system::integration::SystemConfig;
use lightbulb_system::lightbulb::good_hl_trace;

fn bench_matcher(c: &mut Criterion) {
    let config = SystemConfig::default();
    let mut gen = TrafficGen::new(5);
    let frames = vec![gen.command(true), gen.command(false)];
    let run = config.run(&frames, 400_000);
    assert!(run.error.is_none());
    let spec = good_hl_trace(config.driver);
    assert!(spec.matches_prefix(&run.events));

    let mut g = c.benchmark_group("trace_matching");
    g.sample_size(20);
    g.bench_function(format!("prefix_{}_events", run.events.len()), |b| {
        b.iter(|| spec.matches_prefix(&run.events))
    });
    g.bench_function(format!("full_{}_events", run.events.len()), |b| {
        b.iter(|| spec.matches(&run.events))
    });
    // The diagnostic path: localize a violation near the end.
    let mut bad = run.events.clone();
    bad.push(lightbulb_system::riscv::MmioEvent::store(
        lightbulb_system::lightbulb::layout::GPIO_OUTPUT_VAL,
        0,
    ));
    g.bench_function("longest_matching_prefix_on_violation", |b| {
        b.iter(|| spec.longest_matching_prefix(&bad))
    });
    g.finish();
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);

//! Interpreter throughput A/B: the predecoded-instruction cache and
//! batched stepping against the seed's fetch-decode-per-step loop, on the
//! booted lightbulb workload, with the pipelined hardware model for scale.
//!
//! Three measurements over the same image and device board:
//!
//! * `cached`   — `SpecMachine::run_block` with the decode cache on (the
//!   default fast path every caller now gets);
//! * `uncached` — the seed configuration: cache disabled, one `step()`
//!   call (fetch, decode, tick) per instruction;
//! * `pipeline` — the pipelined hardware model, for scale (it simulates
//!   five stages per cycle and is expected to be far slower per retired
//!   instruction).
//!
//! Run with `cargo bench --bench spec_step_throughput`.

use criterion::{BatchSize, Criterion};
use lightbulb_system::devices::{Board, SpiConfig};
use lightbulb_system::integration::{build_image, SystemConfig};
use lightbulb_system::processor::{PipelineConfig, Pipelined};
use lightbulb_system::riscv::{Memory, SpecMachine};

const STEPS: u64 = 200_000;
const RAM: u32 = 0x1_0000;

fn booted_spec(words: &[u32], icache: bool) -> SpecMachine<Board> {
    let mut m = SpecMachine::new(Memory::with_size(RAM), Board::new(SpiConfig::default()));
    m.set_icache_enabled(icache);
    m.load_program(0, words);
    m
}

fn bench_throughput(c: &mut Criterion) {
    let image = build_image(&SystemConfig::default());
    let words = image.words();
    let bytes = image.bytes();

    // Warm-up outside the measurement (page faults, frequency ramp).
    for _ in 0..2 {
        let mut m = booted_spec(&words, true);
        m.run_block(STEPS).expect("lightbulb runs clean");
        criterion::black_box(m.instret);
    }

    let mut g = c.benchmark_group("spec_step_throughput");
    g.sample_size(30);

    g.bench_function("cached", |b| {
        b.iter_batched(
            || booted_spec(&words, true),
            |mut m| {
                m.run_block(STEPS).expect("lightbulb runs clean");
                m.instret
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("uncached", |b| {
        b.iter_batched(
            || booted_spec(&words, false),
            |mut m| {
                for _ in 0..STEPS {
                    m.step().expect("lightbulb runs clean");
                }
                m.instret
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("pipeline", |b| {
        b.iter_batched(
            || {
                Pipelined::new(
                    &bytes,
                    RAM,
                    Board::new(SpiConfig::default()),
                    PipelineConfig::default(),
                )
            },
            |mut cpu| {
                cpu.run(STEPS); // cycles, not instructions: hardware scale
                (cpu.cycle, cpu.retired)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_throughput(&mut c);

    let cached = c
        .median_ns("spec_step_throughput/cached")
        .expect("cached ran");
    let uncached = c
        .median_ns("spec_step_throughput/uncached")
        .expect("uncached ran");
    let to_rate = |ns: f64| STEPS as f64 / (ns / 1e9);
    println!();
    println!(
        "cached: {:.1} Msteps/s   uncached (seed path): {:.1} Msteps/s   speedup: {:.2}x",
        to_rate(cached) / 1e6,
        to_rate(uncached) / 1e6,
        uncached / cached
    );
}

//! The fault-injection sweep: thousands of seeded device-fault plans run
//! against the hardened lightbulb stack on both the pipelined processor
//! and the ISA spec machine, each run checked for spec satisfaction and
//! replay trace equality. `--json` emits a `bench-report/v1` record to
//! `BENCH_fault_sweep.json`.
//!
//! Every seed derives a deterministic `FaultPlan` (delayed/never-ready
//! registers, SPI wire garbage, RX stalls, dropped/truncated/corrupted
//! frames, spurious RX flags) and must be *recoverable*: the drivers'
//! bounded retries and re-initialization keep every trace inside
//! `goodHlTrace`. The sweep also self-checks determinism: the same seed
//! range swept twice (and with different shard counts) must publish
//! byte-identical counter reports.
//!
//! The sweep is crash-resilient: per-seed panics are caught and reported,
//! transient budget exhaustion retries with escalating budgets, and
//! `--checkpoint`/`--resume` make a killed run continue where it stopped
//! with a byte-identical final report. Failing seeds are triaged
//! automatically — delta-debugged to a 1-minimal fault plan with a named
//! divergence site, written as `TRIAGE_fault_sweep_seed<N>.json`.
//!
//! Flags:
//! * `--seeds N` (default 1000), `--shards N` (default: one per hardware
//!   thread), `--json`;
//! * `--checkpoint PATH` (write progress atomically; default cadence
//!   every 64 seeds, `--checkpoint-every N` to change);
//! * `--resume PATH` (continue a killed sweep from its checkpoint);
//! * `--triage-dir DIR` (where triage artifacts go; default: the
//!   workspace root, next to `BENCH_fault_sweep.json`);
//! * `--triage-demo` (run a planted unrecoverable plan through the full
//!   triage path and write its artifact — the CI exercise that keeps the
//!   red-sweep workflow from rotting);
//! * `--replay-plan PATH` (re-run one plan from a `fault-plan/v1` or
//!   `triage-report/v1` file: the one-liner a triage artifact names).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use bench::{counters_json, emit_json, json_mode, render_table, workspace_root};
use lightbulb_system::devices::FaultPlan;
use lightbulb_system::integration::differential::{
    default_shards, fault_check_plan, fault_sweep, fault_sweep_with, CheckpointConfig,
    FaultSweepConfig, FaultSweepOptions, RetryPolicy, SweepOptions,
};
use lightbulb_system::integration::{build_image, triage_plan, SweepCheckpoint};
use obs::json::Value;

fn arg_value(name: &str) -> Option<u64> {
    arg_str(name).and_then(|v| v.parse().ok())
}

fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The planted unrecoverable plan for `--triage-demo`: BYTE_TEST junk far
/// past the driver's bring-up budget (initialization can never succeed,
/// so no frame is ever delivered — a liveness failure under
/// `require_done`), buried in noise atoms the minimizer must strip.
fn demo_plan() -> FaultPlan {
    FaultPlan {
        byte_test_junk_reads: 10_000,
        spurious_rx_reads: vec![40, 90],
        wire_garbage: vec![(25, 0x5A), (130, 0xA5)],
        rx_stalls: vec![(60, 9)],
        ..FaultPlan::none()
    }
}

/// `--triage-demo`: exercise the whole red-sweep workflow on the planted
/// plan — fail, shrink, locate, write the artifact — and verify the
/// artifact round-trips. Exits nonzero if any triage promise breaks.
fn run_triage_demo(triage_dir: &std::path::Path) -> ExitCode {
    let cfg = FaultSweepConfig {
        require_done: true,
        ..FaultSweepConfig::default()
    };
    let image = build_image(&cfg.system);
    let plan = demo_plan();
    let Some(report) = triage_plan(&plan, &cfg, &image) else {
        eprintln!("triage demo: the planted plan unexpectedly passes — demo is broken");
        return ExitCode::from(2);
    };
    let original = report.original.atoms().len();
    let minimal = report.minimal.atoms().len();
    let path = triage_dir.join("TRIAGE_fault_sweep_demo.json");
    if let Err(e) =
        lightbulb_system::integration::checkpoint::write_atomic(&path, &report.to_json().render())
    {
        eprintln!("triage demo: could not write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    let table = vec![
        vec!["original atoms".to_string(), original.to_string()],
        vec!["minimal atoms".to_string(), minimal.to_string()],
        vec!["probes".to_string(), report.probes.to_string()],
        vec!["error".to_string(), report.error.to_string()],
        vec!["divergence".to_string(), report.site.description.clone()],
        vec!["artifact".to_string(), path.display().to_string()],
    ];
    print!(
        "{}",
        render_table(
            "triage demo (planted unrecoverable plan)",
            &["metric", "value"],
            &table
        )
    );
    if minimal >= original {
        eprintln!("triage demo: shrinking removed nothing ({original} -> {minimal} atoms)");
        return ExitCode::from(2);
    }
    // The artifact's repro path must work: replaying the minimal plan
    // from the file we just wrote must reproduce the failure.
    match replay_file(&path, true) {
        Ok(Some(_)) => ExitCode::SUCCESS,
        Ok(None) => {
            eprintln!("triage demo: replaying the minimal plan did not reproduce the failure");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("triage demo: replay failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Loads a plan from a `fault-plan/v1` or `triage-report/v1` document and
/// runs [`fault_check_plan`] on it once. Returns the error the plan
/// produces (`None`: the plan passes).
fn replay_file(path: &std::path::Path, quiet: bool) -> Result<Option<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    // A triage report embeds the minimal plan and remembers whether the
    // failure was a liveness one (workload_incomplete needs require_done
    // to reproduce); a bare plan document replays in safety mode.
    let (plan_doc, require_done) = match doc.get("schema").and_then(Value::as_str) {
        Some("triage-report/v1") => (
            doc.get("minimal")
                .ok_or("triage report without a minimal plan")?,
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str)
                == Some("workload_incomplete"),
        ),
        _ => (&doc, false),
    };
    let plan = FaultPlan::from_json(plan_doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let cfg = FaultSweepConfig {
        require_done,
        ..FaultSweepConfig::default()
    };
    let image = build_image(&cfg.system);
    let mut counters = obs::Counters::new();
    match fault_check_plan(&plan, &cfg, &image, &mut counters) {
        Ok(()) => {
            if !quiet {
                println!(
                    "replay: plan (seed {}, {} atoms) passes",
                    plan.seed,
                    plan.atoms().len()
                );
            }
            Ok(None)
        }
        Err(e) => {
            if !quiet {
                println!(
                    "replay: plan (seed {}, {} atoms) fails: {e}",
                    plan.seed,
                    plan.atoms().len()
                );
            }
            Ok(Some(e.to_string()))
        }
    }
}

fn main() -> ExitCode {
    let triage_dir = arg_str("--triage-dir").map_or_else(workspace_root, PathBuf::from);

    if has_flag("--triage-demo") {
        return run_triage_demo(&triage_dir);
    }
    if let Some(path) = arg_str("--replay-plan") {
        return match replay_file(std::path::Path::new(&path), false) {
            Ok(None) => ExitCode::SUCCESS,
            Ok(Some(_)) => ExitCode::from(1),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let seeds = arg_value("--seeds").unwrap_or(1000);
    let shards = arg_value("--shards").unwrap_or(default_shards() as u64) as usize;
    let cfg = FaultSweepConfig::default();

    // Checkpoint/resume plumbing. A resume without an explicit
    // --checkpoint keeps writing to the file it resumed from.
    let resume_path = arg_str("--resume").map(PathBuf::from);
    let checkpoint_path = arg_str("--checkpoint")
        .map(PathBuf::from)
        .or_else(|| resume_path.clone());
    let resume = match &resume_path {
        Some(path) => match SweepCheckpoint::load(path) {
            Ok(cp) => {
                // Validate against the geometry the engine will derive, so
                // a wrong --seeds/--shards refuses cleanly here instead of
                // panicking inside the sweep.
                let n = seeds;
                let sh = (shards.max(1) as u64).min(n.max(1));
                let chunk = n.div_ceil(sh);
                let used = if n == 0 { 1 } else { n.div_ceil(chunk) };
                if let Err(e) = cp.validate(0, n, used as usize, chunk, Some("fault_sweep")) {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
                println!(
                    "resuming from {}: {} of {} seeds already done",
                    path.display(),
                    cp.completed(),
                    cp.total
                );
                Some(cp)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let opts = FaultSweepOptions {
        sweep: SweepOptions {
            retry: RetryPolicy::escalating(),
            checkpoint: checkpoint_path.as_ref().map(|path| CheckpointConfig {
                path: path.clone(),
                every: arg_value("--checkpoint-every").unwrap_or(64).max(1),
                tag: "fault_sweep".to_string(),
            }),
            resume,
            cancel: None,
        },
        triage: 3,
        triage_dir: Some(triage_dir),
    };

    let t0 = Instant::now();
    let report = fault_sweep_with(0..seeds, shards, &cfg, &opts);
    let secs = t0.elapsed().as_secs_f64();
    report.expect_clean("fault sweep");

    // Determinism self-check on a small prefix: same seeds, different
    // shard count, byte-identical counter report.
    let probe = seeds.min(16);
    let serial = fault_sweep(0..probe, 1, &cfg);
    let sharded = fault_sweep(0..probe, 4, &cfg);
    let strip = |c: &obs::Counters| {
        let mut out = obs::Counters::new();
        for (k, v) in c.iter() {
            if k != "core.diff.shards" {
                out.set(k, v);
            }
        }
        counters_json(&out).render()
    };
    let deterministic = strip(&serial.counters) == strip(&sharded.counters);
    assert!(deterministic, "fault sweep must be shard-count invariant");

    let injected = report.counters.get("devices.faults.injected");
    let retries = report.counters.get("driver.retries");
    let reinits = report.counters.get("driver.reinit");
    let retried = report.counters.get("core.diff.retried_seeds");
    let recovered = report.counters.get("core.diff.recovered_seeds");

    if json_mode() {
        let data = Value::obj()
            .field(
                "workload",
                Value::Str("seeded fault plans vs hardened drivers".into()),
            )
            .field("seeds", Value::UInt(seeds))
            .field("shards", Value::UInt(report.shards as u64))
            .field("conclusive", Value::UInt(report.conclusive))
            .field("failures", Value::UInt(report.failures.len() as u64))
            .field("panicked", Value::UInt(report.panicked.len() as u64))
            .field("retried_seeds", Value::UInt(retried))
            .field("recovered_seeds", Value::UInt(recovered))
            .field("resumed", Value::Bool(resume_path.is_some()))
            .field("seconds", Value::Float(secs))
            .field("seeds_per_sec", Value::Float(seeds as f64 / secs))
            .field("frames_per_run", Value::UInt(cfg.frames as u64))
            .field("quick_cycles", Value::UInt(cfg.quick_cycles))
            .field("max_cycles", Value::UInt(cfg.max_cycles))
            .field("faults_injected", Value::UInt(injected))
            .field("driver_retries", Value::UInt(retries))
            .field("driver_reinits", Value::UInt(reinits))
            .field("deterministic", Value::Bool(deterministic))
            .field(
                "triage",
                Value::Arr(report.triage.iter().map(|t| t.to_json()).collect()),
            )
            .field("counters", counters_json(&report.counters));
        emit_json("fault_sweep", data);
        return ExitCode::SUCCESS;
    }

    let table = vec![
        vec!["seeds swept".to_string(), report.total.to_string()],
        vec!["conclusive".to_string(), report.conclusive.to_string()],
        vec!["failures".to_string(), report.failures.len().to_string()],
        vec!["panicked".to_string(), report.panicked.len().to_string()],
        vec![
            "retried / recovered".to_string(),
            format!("{retried} / {recovered}"),
        ],
        vec!["shards".to_string(), report.shards.to_string()],
        vec!["wall clock".to_string(), format!("{secs:.2} s")],
        vec![
            "throughput".to_string(),
            format!("{:.2} seeds/s", seeds as f64 / secs),
        ],
        vec!["faults injected".to_string(), injected.to_string()],
        vec!["driver retries".to_string(), retries.to_string()],
        vec!["driver re-inits".to_string(), reinits.to_string()],
    ];
    print!(
        "{}",
        render_table(
            "fault-injection sweep (pipelined + spec machine, per seed)",
            &["metric", "value"],
            &table
        )
    );
    println!();
    println!(
        "determinism: shard-count invariance self-check {}",
        if deterministic { "passed" } else { "FAILED" }
    );
    ExitCode::SUCCESS
}

//! The fault-injection sweep: thousands of seeded device-fault plans run
//! against the hardened lightbulb stack on both the pipelined processor
//! and the ISA spec machine, each run checked for spec satisfaction and
//! replay trace equality. `--json` emits a `bench-report/v1` record to
//! `BENCH_fault_sweep.json`.
//!
//! Every seed derives a deterministic `FaultPlan` (delayed/never-ready
//! registers, SPI wire garbage, RX stalls, dropped/truncated/corrupted
//! frames, spurious RX flags) and must be *recoverable*: the drivers'
//! bounded retries and re-initialization keep every trace inside
//! `goodHlTrace`. The sweep also self-checks determinism: the same seed
//! range swept twice (and with different shard counts) must publish
//! byte-identical counter reports.
//!
//! Flags: `--seeds N` (default 1000), `--shards N` (default: one per
//! hardware thread), `--json`.

use std::time::Instant;

use bench::{counters_json, emit_json, json_mode, render_table};
use lightbulb_system::integration::differential::{default_shards, fault_sweep, FaultSweepConfig};
use obs::json::Value;

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let seeds = arg_value("--seeds").unwrap_or(1000);
    let shards = arg_value("--shards").unwrap_or(default_shards() as u64) as usize;
    let cfg = FaultSweepConfig::default();

    let t0 = Instant::now();
    let report = fault_sweep(0..seeds, shards, &cfg);
    let secs = t0.elapsed().as_secs_f64();
    report.expect_clean("fault sweep");

    // Determinism self-check on a small prefix: same seeds, different
    // shard count, byte-identical counter report.
    let probe = seeds.min(16);
    let serial = fault_sweep(0..probe, 1, &cfg);
    let sharded = fault_sweep(0..probe, 4, &cfg);
    let strip = |c: &obs::Counters| {
        let mut out = obs::Counters::new();
        for (k, v) in c.iter() {
            if k != "core.diff.shards" {
                out.set(k, v);
            }
        }
        counters_json(&out).render()
    };
    let deterministic = strip(&serial.counters) == strip(&sharded.counters);
    assert!(deterministic, "fault sweep must be shard-count invariant");

    let injected = report.counters.get("devices.faults.injected");
    let retries = report.counters.get("driver.retries");
    let reinits = report.counters.get("driver.reinit");

    if json_mode() {
        let data = Value::obj()
            .field(
                "workload",
                Value::Str("seeded fault plans vs hardened drivers".into()),
            )
            .field("seeds", Value::UInt(seeds))
            .field("shards", Value::UInt(report.shards as u64))
            .field("conclusive", Value::UInt(report.conclusive))
            .field("failures", Value::UInt(report.failures.len() as u64))
            .field("seconds", Value::Float(secs))
            .field("seeds_per_sec", Value::Float(seeds as f64 / secs))
            .field("frames_per_run", Value::UInt(cfg.frames as u64))
            .field("quick_cycles", Value::UInt(cfg.quick_cycles))
            .field("max_cycles", Value::UInt(cfg.max_cycles))
            .field("faults_injected", Value::UInt(injected))
            .field("driver_retries", Value::UInt(retries))
            .field("driver_reinits", Value::UInt(reinits))
            .field("deterministic", Value::Bool(deterministic))
            .field("counters", counters_json(&report.counters));
        emit_json("fault_sweep", data);
        return;
    }

    let table = vec![
        vec!["seeds swept".to_string(), report.total.to_string()],
        vec!["conclusive".to_string(), report.conclusive.to_string()],
        vec!["failures".to_string(), report.failures.len().to_string()],
        vec!["shards".to_string(), report.shards.to_string()],
        vec!["wall clock".to_string(), format!("{secs:.2} s")],
        vec![
            "throughput".to_string(),
            format!("{:.2} seeds/s", seeds as f64 / secs),
        ],
        vec!["faults injected".to_string(), injected.to_string()],
        vec!["driver retries".to_string(), retries.to_string()],
        vec!["driver re-inits".to_string(), reinits.to_string()],
    ];
    print!(
        "{}",
        render_table(
            "fault-injection sweep (pipelined + spec machine, per seed)",
            &["metric", "value"],
            &table
        )
    );
    println!();
    println!(
        "determinism: shard-count invariance self-check {}",
        if deterministic { "passed" } else { "FAILED" }
    );
}

//! Table 1 of the paper: evaluation criteria for verified stacks.
//!
//! The rows for prior systems are the paper's published assessments
//! (static data); the final column — this reproduction — is re-derived
//! from what the workspace actually implements, with the honest caveat
//! that "integration verification" here means executable cross-layer
//! checking rather than machine-checked proof.

use bench::{counters_json, emit_json, json_mode, render_table, table_json};
use lightbulb_system::integration::SystemConfig;
use obs::json::Value;

fn main() {
    let criteria = [
        "Applications",
        "OS and/or drivers",
        "Source language",
        "Assembly",
        "Machine code",
        "HDL",
        "Integration verification",
        "One proof assistant",
        "Modularity",
        "Standardized ISA",
        "HW optimizations",
        "Realistic I/O",
    ];
    // Columns as printed in the paper (✓ met, ~ partial, ✗ not, − n/a).
    let systems: &[(&str, [&str; 12])] = &[
        (
            "seL4",
            ["~", "✓", "~", "✓", "−", "✗", "✗", "✓", "~", "✓", "−", "~"],
        ),
        (
            "VST+CertiKOS",
            ["~", "✓", "✓", "✓", "−", "✗", "~", "✓", "✓", "✗", "−", "✗"],
        ),
        (
            "CompCertMC",
            ["✗", "✗", "✓", "✓", "✓", "✗", "~", "✓", "~", "✗", "−", "✗"],
        ),
        (
            "Everest",
            ["✓", "✗", "✓", "✓", "−", "✗", "~", "✗", "✓", "✓", "−", "~"],
        ),
        (
            "Serval",
            ["✓", "✓", "✗", "✓", "✓", "✗", "~", "✗", "✗", "✓", "−", "~"],
        ),
        (
            "Vigor",
            ["✓", "✓", "✓", "✓", "✓", "✗", "~", "✗", "~", "✓", "−", "✓"],
        ),
        (
            "CLI stack",
            ["✓", "✗", "✓", "✓", "✓", "✓", "✓", "✓", "~", "✗", "~", "✗"],
        ),
        (
            "Verisoft",
            ["✓", "✓", "✓", "✓", "✓", "✓", "~", "✓", "✓", "✗", "✗", "~"],
        ),
        (
            "CakeML",
            ["✓", "✗", "✓", "✓", "✓", "✓", "✓", "✓", "✓", "✗", "✗", "✗"],
        ),
        (
            "PLDI'21 paper",
            ["✓", "✓", "✓", "✓", "✓", "✓", "✓", "✓", "✓", "✓", "✓", "✓"],
        ),
        // Our column, derived from the workspace: everything is built and
        // cross-checked executably; "one proof assistant" does not apply
        // (no proof assistant at all), so integration verification is ~.
        (
            "this repro",
            ["✓", "✓", "✓", "✓", "✓", "✓", "~", "−", "✓", "✓", "✓", "✓"],
        ),
    ];

    let rows: Vec<Vec<String>> = criteria
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut row = vec![c.to_string()];
            row.extend(systems.iter().map(|(_, marks)| marks[i].to_string()));
            row
        })
        .collect();
    let mut headers = vec!["criterion"];
    headers.extend(systems.iter().map(|(n, _)| *n));
    if json_mode() {
        // Alongside the static matrix, ship the telemetry of one default
        // verified boot so the record carries measured counters too.
        let run = SystemConfig::default().run(&[], 250_000);
        let data = Value::obj()
            .field("rows", table_json(&headers, &rows))
            .field("counters", counters_json(&run.report.counters));
        emit_json("table1", data);
        return;
    }
    print!(
        "{}",
        render_table(
            "Table 1: evaluation criteria for verified stacks",
            &headers,
            &rows
        )
    );
    println!();
    println!("Key: ✓ met  ~ partially met  ✗ not met  − not applicable");
    println!();
    println!("'this repro' column justification:");
    println!("  Applications/OS+drivers/Source/Asm/Machine code/HDL: every layer is");
    println!("  implemented in this workspace (lightbulb app, SPI+LAN9250 drivers,");
    println!("  Bedrock2, RV32IM binaries, rule-based hardware models).");
    println!("  Integration verification: ~ — each paper theorem is an executable");
    println!("  differential/trace check, not a machine-checked proof.");
    println!("  Standardized ISA: RV32IM. HW optimizations: 4-stage pipeline, BTB,");
    println!("  eagerly-filled I$. Realistic I/O: MMIO to SPI/GPIO, Ethernet frames.");
}

//! §7.2.2, reproduced: how long the *verification* machinery itself takes.
//!
//! The paper reports 80 minutes of Coq plus ~2 hours of Kami refinement
//! proof checking per CI run. This binary times the corresponding
//! executable checks: the end-to-end trace check, the processor refinement
//! check, a compiler-differential batch, and representative
//! symbolic-execution obligations.

use std::time::Instant;

use bench::{emit_json, json_mode, render_table};
use lightbulb_system::devices::{Board, SpiConfig, TrafficGen};
use lightbulb_system::integration::differential::{
    check_compiler_differential, default_shards, parallel_sweep, DiffError,
};
use lightbulb_system::integration::progen::ProgGen;
use lightbulb_system::integration::{build_image, end_to_end_lightbulb, SystemConfig};
use lightbulb_system::processor::{check_refinement, PipelineConfig};
use obs::json::Value;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    let mut rows = Vec::new();
    // (name, seconds, work) — the numeric twin of `rows` for `--json`.
    let mut measured: Vec<(&str, f64, String)> = Vec::new();

    // 1. End-to-end check: boot + 2 packets + trace matching.
    let mut gen = TrafficGen::new(7);
    let frames = vec![gen.command(true), gen.command(false)];
    let (report, secs) = timed(|| {
        end_to_end_lightbulb(
            &SystemConfig::default(),
            &frames,
            600_000,
            Some(&[true, false]),
        )
        .expect("end-to-end check")
    });
    rows.push(vec![
        "end-to-end (boot + 2 packets + spec match)".to_string(),
        format!("{secs:.2} s"),
        format!(
            "{} events, {} cycles",
            report.events_checked, report.run.cycles
        ),
    ]);
    measured.push((
        "end_to_end",
        secs,
        format!(
            "{} events, {} cycles",
            report.events_checked, report.run.cycles
        ),
    ));

    // 2. Processor refinement over the booted system.
    let image = build_image(&SystemConfig::default());
    let mut board = Board::new(SpiConfig::default());
    board.inject_frame(&gen.command(true));
    let (r, secs) = timed(|| {
        check_refinement(
            &image.bytes(),
            0x1_0000,
            board,
            Board::claims,
            PipelineConfig::default(),
            2_000_000,
        )
        .expect("refinement")
    });
    rows.push(vec![
        "pipelined ⊑ single-cycle (replay, 2M cycles)".to_string(),
        format!("{secs:.2} s"),
        format!("{} events matched", r.events),
    ]);
    measured.push(("refinement", secs, format!("{} events matched", r.events)));

    // 3. Compiler differential batch.
    let (n, secs) = timed(|| {
        let mut conclusive = 0;
        for seed in 0..40u64 {
            match check_compiler_differential(&ProgGen::new(seed).gen_program(), false) {
                Ok(()) => conclusive += 1,
                Err(DiffError::SourceUb(_)) => {}
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
        conclusive
    });
    rows.push(vec![
        "compiler differential (40 random programs)".to_string(),
        format!("{secs:.2} s"),
        format!("{n} conclusive"),
    ]);
    measured.push(("compiler_differential", secs, format!("{n} conclusive")));

    // 3b. The same batch, sharded across every hardware thread.
    let shards = default_shards();
    let (r, secs) = timed(|| {
        let r = parallel_sweep(0..40, shards, |p| check_compiler_differential(p, false));
        r.expect_clean("verif_perf parallel differential");
        r
    });
    rows.push(vec![
        format!("compiler differential (parallel, {shards} shards)"),
        format!("{secs:.2} s"),
        format!("{} conclusive", r.conclusive),
    ]);
    measured.push((
        "compiler_differential_parallel",
        secs,
        format!("{} conclusive, {} shards", r.conclusive, r.shards),
    ));

    // 4. Symbolic-execution obligations (driver-style fragments).
    let (obs, secs) = timed(|| {
        use bedrock2::dsl::*;
        use bedrock2::{Function, Program};
        use proglogic::symexec::{MmioExtSpec, SymExec};
        use proglogic::{Formula, Term};
        let pad = Function::new(
            "pad",
            &["len"],
            &["p"],
            set("p", mul(divu(add(var("len"), lit(3)), lit(4)), lit(4))),
        );
        let prog = Program::from_functions([pad]);
        let se = SymExec::new(
            &prog,
            MmioExtSpec {
                ranges: lightbulb_system::lightbulb::layout::mmio_ranges(),
            },
        );
        let mut total = 0;
        for _ in 0..100 {
            let report = se
                .check_function(
                    "pad",
                    |st| {
                        let len = st.fresh("len");
                        st.assume(Formula::ltu(&len, &Term::constant(1520)));
                        vec![len]
                    },
                    |_st, rets| vec![Formula::ltu(&rets[0], &Term::constant(2048))],
                )
                .expect("vc");
            total += report.obligations;
        }
        total
    });
    rows.push(vec![
        "symbolic execution (100× buffer-bound VC)".to_string(),
        format!("{secs:.2} s"),
        format!("{obs} obligations discharged"),
    ]);
    measured.push(("symexec", secs, format!("{obs} obligations discharged")));

    if json_mode() {
        let checks = Value::Arr(
            measured
                .iter()
                .map(|(name, secs, work)| {
                    Value::obj()
                        .field("check", Value::Str((*name).to_string()))
                        .field("seconds", Value::Float(*secs))
                        .field("work", Value::Str(work.clone()))
                })
                .collect(),
        );
        emit_json("verif_perf", Value::obj().field("checks", checks));
        return;
    }
    print!(
        "{}",
        render_table(
            "§7.2.2: verification performance (this machine)",
            &["check", "wall clock", "work"],
            &rows
        )
    );
    println!();
    println!("paper: ~80 min Coq build + ~2 h Kami refinement checking per CI run.");
    println!("The executable checks trade assurance for a ~3-orders-of-magnitude");
    println!("faster feedback loop — the accidental-complexity point of §7.3.");
}

//! §7.2.2, reproduced: how long the *verification* machinery itself takes.
//!
//! The paper reports 80 minutes of Coq plus ~2 hours of Kami refinement
//! proof checking per CI run. This binary times the corresponding
//! executable checks: the end-to-end trace check, the processor refinement
//! check (single and sharded batch), a compiler-differential batch,
//! representative symbolic-execution obligations, and the incremental
//! verification engine itself — cold cache, warm cache, and sharded.
//!
//! Flags (beyond the shared `--json`):
//!
//! * `--cache PATH` — back the obligation cache with a persistent
//!   `verif-cache/v1` store at `PATH`, so a second invocation re-proves
//!   only what changed (the executable analogue of compiled `.vo` reuse);
//! * `--engine-only` — run only the verification-engine section (the fast
//!   CI smoke: pure proglogic, no processor simulation);
//! * `--stable` — deterministic output mode: timings render as `0.0` and
//!   no `BENCH_verif_perf.json` is written, so two runs over the same
//!   cache state produce byte-identical `--json` documents (what the
//!   cross-process cache tests pin down).

use std::path::PathBuf;
use std::time::Instant;

use bedrock2::ast::BinOp;
use bench::{emit_json, json_mode, json_record, render_table};
use lightbulb_system::devices::{Board, SpiConfig, TrafficGen};
use lightbulb_system::integration::differential::{
    check_compiler_differential, default_shards, parallel_sweep, DiffError,
};
use lightbulb_system::integration::progen::ProgGen;
use lightbulb_system::integration::{build_image, end_to_end_lightbulb, SystemConfig};
use lightbulb_system::processor::{check_refinement, check_refinement_batch, PipelineConfig};
use obs::json::Value;
use proglogic::{prove_batch, Formula, Obligation, ProofCache, Term};

/// Obligations in the engine corpus. Large enough that the cold solve is
/// comfortably measurable; every obligation is distinct (distinct
/// fingerprints) and provable by the interval solver.
const CORPUS: u32 = 12000;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn opt_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// A corpus of `n` distinct driver-style obligations. Each couples a
/// padded-length computation (the `pad` idiom from the SPI driver) with a
/// chain of scaled-offset additions whose depth and constants vary with
/// `i`, so every obligation has a distinct fingerprint and a genuinely
/// different proof. All are provable, so `proved == n` is part of the
/// deterministic output.
fn obligation_corpus(n: u32) -> Vec<Obligation> {
    (0..n)
        .map(|i| {
            let len = Term::var(0, "len");
            let idx = Term::var(1, "idx");
            let bound = 64 + i; // distinct per obligation
                                // padded = ((len + 3) / 4) * 4 ≤ bound + 2 whenever len < bound.
            let padded = Term::op(
                BinOp::Mul,
                &Term::op(BinOp::DivU, &len.add_const(3), &Term::constant(4)),
                &Term::constant(4),
            );
            // A chain of word-scaled offsets: padded + 4·idx + c_1 + … + c_d,
            // depth varying with i so proofs differ structurally too.
            let scaled = Term::op(BinOp::Mul, &idx, &Term::constant(4));
            let mut acc = Term::op(BinOp::Add, &padded, &scaled);
            let depth = 2 + (i % 5);
            for d in 0..depth {
                acc = acc.add_const(1 + (i + d) % 16);
            }
            // Upper bound of acc: (bound + 2) + 4·bound + 16·depth.
            let limit = (bound + 2) + 4 * bound + 16 * depth + 1;
            Obligation {
                context: format!("driver offset chain {i}"),
                assumptions: vec![
                    Formula::ltu(&len, &Term::constant(bound)),
                    Formula::leu(&idx, &Term::constant(bound)),
                ],
                goal: Formula::ltu(&acc, &Term::constant(limit)),
            }
        })
        .collect()
}

/// One engine phase, for the JSON record.
struct Phase {
    name: &'static str,
    seconds: f64,
    hits: u64,
    misses: u64,
    shards: usize,
}

impl Phase {
    fn json(&self, stable: bool) -> Value {
        Value::obj()
            .field(
                "seconds",
                Value::Float(if stable { 0.0 } else { self.seconds }),
            )
            .field("hits", Value::UInt(self.hits))
            .field("misses", Value::UInt(self.misses))
            .field("shards", Value::UInt(self.shards as u64))
    }
}

fn main() {
    let stable = flag("--stable");
    let engine_only = flag("--engine-only");
    let store = opt_value("--cache").map(PathBuf::from);

    let mut rows = Vec::new();
    // (name, seconds, work) — the numeric twin of `rows` for `--json`.
    let mut measured: Vec<(&str, f64, String)> = Vec::new();

    if !engine_only {
        // 1. End-to-end check: boot + 2 packets + trace matching.
        let mut gen = TrafficGen::new(7);
        let frames = vec![gen.command(true), gen.command(false)];
        let (report, secs) = timed(|| {
            end_to_end_lightbulb(
                &SystemConfig::default(),
                &frames,
                600_000,
                Some(&[true, false]),
            )
            .expect("end-to-end check")
        });
        rows.push(vec![
            "end-to-end (boot + 2 packets + spec match)".to_string(),
            format!("{secs:.2} s"),
            format!(
                "{} events, {} cycles",
                report.events_checked, report.run.cycles
            ),
        ]);
        measured.push((
            "end_to_end",
            secs,
            format!(
                "{} events, {} cycles",
                report.events_checked, report.run.cycles
            ),
        ));

        // 2. Processor refinement over the booted system.
        let image = build_image(&SystemConfig::default());
        let mut board = Board::new(SpiConfig::default());
        board.inject_frame(&gen.command(true));
        let (r, secs) = timed(|| {
            check_refinement(
                &image.bytes(),
                0x1_0000,
                board,
                Board::claims,
                PipelineConfig::default(),
                2_000_000,
            )
            .expect("refinement")
        });
        rows.push(vec![
            "pipelined ⊑ single-cycle (replay, 2M cycles)".to_string(),
            format!("{secs:.2} s"),
            format!("{} events matched", r.events),
        ]);
        measured.push(("refinement", secs, format!("{} events matched", r.events)));

        // 2b. Independent refinement runs as one sharded batch.
        let shards = default_shards();
        let (batch, secs) = timed(|| {
            let batch = check_refinement_batch(
                &image.bytes(),
                0x1_0000,
                2,
                shards,
                |job| {
                    let mut board = Board::new(SpiConfig::default());
                    let mut gen = TrafficGen::new(11 + job as u64);
                    board.inject_frame(&gen.command(job % 2 == 0));
                    (board, Board::claims as fn(u32) -> bool)
                },
                PipelineConfig::default(),
                600_000,
            );
            batch.expect_clean("verif_perf refinement batch");
            batch
        });
        rows.push(vec![
            format!("refinement batch (2 runs, {} shards)", batch.shards),
            format!("{secs:.2} s"),
            format!("{} events matched", batch.total_events()),
        ]);
        measured.push((
            "refinement_batch",
            secs,
            format!(
                "{} events matched, {} shards",
                batch.total_events(),
                batch.shards
            ),
        ));

        // 3. Compiler differential batch.
        let (n, secs) = timed(|| {
            let mut conclusive = 0;
            for seed in 0..40u64 {
                match check_compiler_differential(&ProgGen::new(seed).gen_program(), false) {
                    Ok(()) => conclusive += 1,
                    Err(DiffError::SourceUb(_)) => {}
                    Err(e) => panic!("seed {seed}: {e}"),
                }
            }
            conclusive
        });
        rows.push(vec![
            "compiler differential (40 random programs)".to_string(),
            format!("{secs:.2} s"),
            format!("{n} conclusive"),
        ]);
        measured.push(("compiler_differential", secs, format!("{n} conclusive")));

        // 3b. The same batch, sharded across every hardware thread.
        let (r, secs) = timed(|| {
            let r = parallel_sweep(0..40, shards, |p| check_compiler_differential(p, false));
            r.expect_clean("verif_perf parallel differential");
            r
        });
        rows.push(vec![
            format!("compiler differential (parallel, {shards} shards)"),
            format!("{secs:.2} s"),
            format!("{} conclusive", r.conclusive),
        ]);
        measured.push((
            "compiler_differential_parallel",
            secs,
            format!("{} conclusive, {} shards", r.conclusive, r.shards),
        ));
    }

    // 4. The verification engine: hash-consed terms, a fingerprint-keyed
    // obligation cache (optionally persistent), sharded batch proving.
    let mut cache = match &store {
        Some(p) => ProofCache::with_store(p).expect("loading verification cache"),
        None => ProofCache::new(),
    };
    let preloaded = cache.len() as u64;
    let corpus = obligation_corpus(CORPUS);
    let shards = default_shards();

    // Cold (or, with a pre-existing store, disk-warm): every obligation
    // runs against whatever the cache already holds.
    let (cold_report, cold_secs) = timed(|| prove_batch(&corpus, 1, Some(&mut cache)));
    // Warm: the same batch again — every obligation must now hit.
    let (warm_report, warm_secs) = timed(|| prove_batch(&corpus, 1, Some(&mut cache)));
    // Parallel cold: the batch sharded, against an empty cache, so the
    // per-shard solve work is real.
    let (par_report, par_secs) = timed(|| prove_batch(&corpus, shards, None));
    assert_eq!(
        cold_report.outcomes, par_report.outcomes,
        "outcomes must be shard-invariant"
    );

    // 4b. The same cache driving the symbolic executor end to end:
    // driver-style VCs, deferred and proved as one sharded batch.
    let (vc, se_secs) = timed(|| {
        use bedrock2::dsl::*;
        use bedrock2::{Function, Program};
        use proglogic::symexec::{MmioExtSpec, SymExec};
        let pad = Function::new(
            "pad",
            &["len"],
            &["p"],
            set("p", mul(divu(add(var("len"), lit(3)), lit(4)), lit(4))),
        );
        let prog = Program::from_functions([pad]);
        let mut se = SymExec::new(
            &prog,
            MmioExtSpec {
                ranges: lightbulb_system::lightbulb::layout::mmio_ranges(),
            },
        );
        se.set_cache(cache.clone());
        let report = se
            .check_function_parallel(
                "pad",
                |st| {
                    let len = st.fresh("len");
                    st.assume(Formula::ltu(&len, &Term::constant(1520)));
                    vec![len]
                },
                |_st, rets| vec![Formula::ltu(&rets[0], &Term::constant(2048))],
                shards,
            )
            .expect("vc");
        cache = se.take_cache().expect("cache was installed above");
        report
    });

    if let Some(p) = &store {
        cache
            .save()
            .unwrap_or_else(|e| panic!("saving verification cache to {}: {e}", p.display()));
    }

    let phases = [
        Phase {
            name: "cold",
            seconds: cold_secs,
            hits: cold_report.cache_hits,
            misses: cold_report.cache_misses,
            shards: 1,
        },
        Phase {
            name: "warm",
            seconds: warm_secs,
            hits: warm_report.cache_hits,
            misses: warm_report.cache_misses,
            shards: 1,
        },
        Phase {
            name: "parallel",
            seconds: par_secs,
            hits: par_report.cache_hits,
            misses: par_report.cache_misses,
            shards: par_report.shards,
        },
    ];
    for p in &phases {
        rows.push(vec![
            format!(
                "obligation engine ({}, {} VCs, {} shard{})",
                p.name,
                CORPUS,
                p.shards,
                if p.shards == 1 { "" } else { "s" }
            ),
            format!("{:.4} s", p.seconds),
            format!("{} hits, {} misses", p.hits, p.misses),
        ]);
    }
    rows.push(vec![
        "symbolic execution (cached, sharded batch)".to_string(),
        format!("{se_secs:.4} s"),
        format!(
            "{} obligations, {} hits, {} misses",
            vc.obligations, vc.cache_hits, vc.cache_misses
        ),
    ]);
    let warm_speedup = if warm_secs > 0.0 {
        cold_secs / warm_secs
    } else {
        0.0
    };
    measured.push((
        "engine",
        cold_secs + warm_secs + par_secs + se_secs,
        format!(
            "{CORPUS} VCs; cold {} hits / {} misses, warm {} hits / {} misses",
            cold_report.cache_hits,
            cold_report.cache_misses,
            warm_report.cache_hits,
            warm_report.cache_misses
        ),
    ));

    if json_mode() {
        let checks = Value::Arr(
            measured
                .iter()
                .map(|(name, secs, work)| {
                    Value::obj()
                        .field("check", Value::Str((*name).to_string()))
                        .field("seconds", Value::Float(if stable { 0.0 } else { *secs }))
                        .field("work", Value::Str(work.clone()))
                })
                .collect(),
        );
        let engine = Value::obj()
            .field("obligations", Value::UInt(u64::from(CORPUS)))
            .field("proved", Value::UInt(cold_report.proved() as u64))
            .field("preloaded", Value::UInt(preloaded))
            .field("cold", phases[0].json(stable))
            .field("warm", phases[1].json(stable))
            .field("parallel", phases[2].json(stable))
            .field(
                "warm_speedup",
                Value::Float(if stable { 0.0 } else { warm_speedup }),
            )
            .field(
                "symexec",
                Value::obj()
                    .field("seconds", Value::Float(if stable { 0.0 } else { se_secs }))
                    .field("obligations", Value::UInt(vc.obligations as u64))
                    .field("hits", Value::UInt(vc.cache_hits))
                    .field("misses", Value::UInt(vc.cache_misses))
                    .field("shards", Value::UInt(vc.shards)),
            );
        let data = Value::obj().field("checks", checks).field("engine", engine);
        if stable {
            // Deterministic mode: print the record but never touch the
            // committed BENCH_verif_perf.json.
            let text = json_record("verif_perf", data).render();
            obs::json::parse(&text)
                .unwrap_or_else(|e| panic!("verif_perf: emitted invalid JSON: {e}"));
            println!("{text}");
        } else {
            emit_json("verif_perf", data);
        }
        return;
    }
    print!(
        "{}",
        render_table(
            "§7.2.2: verification performance (this machine)",
            &["check", "wall clock", "work"],
            &rows
        )
    );
    println!();
    println!(
        "obligation cache: warm run {warm_speedup:.1}x faster than cold ({} entries{})",
        cache.len(),
        match &store {
            Some(p) => format!(", persisted to {}", p.display()),
            None => String::new(),
        }
    );
    println!();
    println!("paper: ~80 min Coq build + ~2 h Kami refinement checking per CI run.");
    println!("The executable checks trade assurance for a ~3-orders-of-magnitude");
    println!("faster feedback loop — the accidental-complexity point of §7.3.");
}

//! Table 2 of the paper: parameterization throughout the stack.
//!
//! Each row names a parameter of the paper's development and the concrete
//! Rust item that realizes it here — and because this file imports those
//! items, the table is checked by the compiler: if a parameter disappears
//! or is renamed, this binary stops building.

use bench::{emit_json, json_mode, render_table, table_json};
use obs::json::Value;

// The imports below ARE the verification that each listed parameter
// exists with the stated role.
#[allow(unused_imports)]
use bedrock2::semantics::ExtHandler; // external-call semantics
#[allow(unused_imports)]
use bedrock2_compiler::link::Entry; // event-loop entry (invariant carrier)
#[allow(unused_imports)]
use bedrock2_compiler::rv32::ExtCallCompiler; // external-calls compiler
#[allow(unused_imports)]
use processor::PipelineConfig;
#[allow(unused_imports)]
use proglogic::symexec::ExtSpec; // vcextern (I/O load/store spec)
#[allow(unused_imports)]
use riscv_spec::MmioHandler; // I/O mechanism of the ISA // processor configuration

fn main() {
    let rows = vec![
        vec![
            "external-call semantics".to_string(),
            "program logic and compiler".to_string(),
            "bedrock2::semantics::ExtHandler + proglogic::symexec::ExtSpec".to_string(),
        ],
        vec![
            "external-calls compiler".to_string(),
            "compiler and its proof".to_string(),
            "bedrock2_compiler::rv32::ExtCallCompiler (MmioExtCompiler instance)".to_string(),
        ],
        vec![
            "event-loop invariant".to_string(),
            "compiler-processor lemma".to_string(),
            "bedrock2_compiler::link::Entry::EventLoop (init/step harness)".to_string(),
        ],
        vec![
            "bitwidth".to_string(),
            "Bedrock2, ISA, processor".to_string(),
            "fixed at 32 bits here (riscv_spec::word); documented divergence".to_string(),
        ],
        vec![
            "I/O mechanisms".to_string(),
            "compiler and its proof".to_string(),
            "MMIOREAD/MMIOWRITE actions; compile_ext is per-action".to_string(),
        ],
        vec![
            "I/O load/store semantics".to_string(),
            "instruction-set specification".to_string(),
            "riscv_spec::MmioHandler (the nonmem_load/nonmem_store hook)".to_string(),
        ],
        vec![
            "external invariant".to_string(),
            "ISA, compiler and its proof".to_string(),
            "MmioHandler::is_mmio ranges disjoint from RAM (checked at runtime)".to_string(),
        ],
        vec![
            "ISA".to_string(),
            "processor and its proof".to_string(),
            "shared combinational processor::alu over riscv_spec::Instruction".to_string(),
        ],
    ];
    let headers = ["Parameter", "Used in (paper)", "Realized here as"];
    if json_mode() {
        let data = Value::obj().field("rows", table_json(&headers, &rows));
        emit_json("table2", data);
        return;
    }
    print!(
        "{}",
        render_table(
            "Table 2: parameterization throughout the stack",
            &headers,
            &rows
        )
    );
    println!();
    println!("(this binary imports every listed item, so the table is compile-checked)");
}

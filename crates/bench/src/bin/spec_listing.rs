//! Prints the complete top-level specification — the artifact behind the
//! paper's claim that "all the above take up less than a page of code and
//! form our application-level promise to the user" (§3.1).
//!
//! What is printed is not documentation but the *actual* combinator
//! structure of `goodHlTrace` as built by `lightbulb::spec`, rendered by
//! the predicate's own `Debug` implementation. The per-event atoms carry
//! their names (`ld@…`, `st@…`, value predicates); `ε` is the empty trace.

use lightbulb_system::lightbulb::spec;
use lightbulb_system::lightbulb::DriverOptions;

fn section(title: &str, pred: &impl std::fmt::Debug) {
    println!("── {title} ──");
    let text = format!("{pred:?}");
    // Wrap for readability: break after top-level "+++" separators.
    let mut depth: i32 = 0;
    let mut line = String::new();
    for c in text.chars() {
        line.push(c);
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            _ => {}
        }
        if line.len() > 100 && depth <= 2 && c == ' ' {
            println!("  {line}");
            line.clear();
        }
    }
    if !line.is_empty() {
        println!("  {line}");
    }
    println!();
}

fn main() {
    let opts = DriverOptions::default();
    println!("The top-level specification, as constructed (verified configuration):\n");
    section("BootSeq", &spec::boot_seq(opts));
    section("PollNone", &spec::poll_none(opts));
    section("Recv true (the 'on' command)", &spec::recv(opts, true));
    section("LightbulbCmd true", &spec::lightbulb_cmd(true));
    section("RecvInvalid", &spec::recv_invalid(opts));
    println!("── goodHlTrace ──");
    println!("  BootSeq +++ ((EX b, Recv b +++ LightbulbCmd b)");
    println!("               ||| RecvInvalid ||| PollNone)^*");
    println!();
    println!("(goodHlTrace itself is the combinator term above; its full expansion");
    println!("is the concatenation of the printed pieces. The source constructing");
    println!("all of this is crates/lightbulb/src/spec.rs — the TCB entry of Table 3.)");
}

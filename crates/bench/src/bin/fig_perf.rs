//! The §7.2.1 performance decomposition: the paper reports the verified
//! system 10× slower than the unverified gcc+FE310 prototype, factored as
//!
//! ```text
//! 10× ≈ (1.4× SPI pipelining · 1.2× timeouts) · 2.1× compiler · 2.7× core
//! ```
//!
//! This binary regenerates the decomposition in *simulated cycles* of
//! packet-handover → GPIO-actuation latency, walking the same
//! configuration grid: each factor toggles exactly one design choice,
//! ending at the "unverified prototype analogue" (pipelined SPI driver, no
//! timeouts, optimizing compiler, idealized 1-IPC core). Absolute numbers
//! differ from the paper's testbed; the claim being reproduced is the
//! *shape*: every factor ≥ 1 and a several-fold product.

use bench::{emit_json, json_mode, packet_to_actuation_latency, render_table};
use lightbulb_system::integration::{ProcessorKind, SystemConfig};
use lightbulb_system::lightbulb::DriverOptions;
use obs::json::Value;

fn main() {
    let verified = SystemConfig::default();
    let spi_pipelined = SystemConfig {
        driver: DriverOptions {
            timeouts: true,
            pipelined_spi: true,
        },
        ..verified
    };
    let no_timeouts = SystemConfig {
        driver: DriverOptions {
            timeouts: false,
            pipelined_spi: true,
        },
        ..verified
    };
    let optimized = SystemConfig {
        optimize: true,
        ..no_timeouts
    };
    let fast_core = SystemConfig {
        processor: ProcessorKind::SingleCycle,
        ..optimized
    };

    let configs = [
        ("A: verified system (paper's shipping config)", verified),
        ("B: + SPI pipelining", spi_pipelined),
        ("C: + no timeout counters", no_timeouts),
        ("D: + optimizing compiler", optimized),
        ("E: + idealized 1-IPC core (FE310 stand-in)", fast_core),
    ];

    eprintln!("measuring packet→actuation latency (5 configurations)…");
    let lat: Vec<u64> = configs
        .iter()
        .map(|(name, c)| {
            let l = packet_to_actuation_latency(c, 1234).cycles();
            eprintln!("  {name}: {l} cycles");
            l
        })
        .collect();

    let paper = [1.4, 1.2, 2.1, 2.7];
    let names = [
        "SPI pipelining",
        "timeout logic",
        "compiler optimizations",
        "processor",
    ];
    let mut rows = Vec::new();
    let mut product = 1.0;
    for i in 0..4 {
        let f = lat[i] as f64 / lat[i + 1] as f64;
        product *= f;
        rows.push(vec![
            names[i].to_string(),
            format!("{:.2}×", paper[i]),
            format!("{f:.2}×"),
            format!("{} → {}", lat[i], lat[i + 1]),
        ]);
    }
    rows.push(vec![
        "TOTAL".to_string(),
        "≈10×".to_string(),
        format!("{product:.2}×"),
        format!("{} → {}", lat[0], lat[4]),
    ]);

    if json_mode() {
        // The decomposition is the figure; the ablation and SPI sweep are
        // narrative extras, skipped in the machine-readable record.
        let factors = Value::Arr(
            (0..4)
                .map(|i| {
                    Value::obj()
                        .field("factor", Value::Str(names[i].to_string()))
                        .field("paper", Value::Float(paper[i]))
                        .field("measured", Value::Float(lat[i] as f64 / lat[i + 1] as f64))
                        .field("cycles_before", Value::UInt(lat[i]))
                        .field("cycles_after", Value::UInt(lat[i + 1]))
                })
                .collect(),
        );
        let grid = Value::Arr(
            configs
                .iter()
                .zip(&lat)
                .map(|((name, _), l)| {
                    Value::obj()
                        .field("config", Value::Str(name.to_string()))
                        .field("latency_cycles", Value::UInt(*l))
                })
                .collect(),
        );
        let data = Value::obj()
            .field("configs", grid)
            .field("factors", factors)
            .field("total_measured", Value::Float(product))
            .field("total_paper", Value::Float(10.0));
        emit_json("fig_perf", data);
        return;
    }

    println!();
    print!(
        "{}",
        render_table(
            "§7.2.1: latency decomposition, verified vs unverified-prototype analogue",
            &["factor", "paper", "measured", "cycles"],
            &rows
        )
    );
    println!();
    println!("shape check: every factor should be ≥ ~1 and the product several-fold.");
    println!("(absolute values are simulated cycles; the paper measured 5.5 ms vs");
    println!("0.55 ms on a 12 MHz FPGA and a 320 MHz-class FE310.)");

    // Design-choice ablation: what does the register allocator buy? The
    // paper implemented it as one of its few optimizations (§7.2); the
    // spill-everything mode removes it.
    eprintln!("\nmeasuring the register-allocation ablation…");
    let spill_all = SystemConfig {
        // spill_everything is a compile option, not a SystemConfig field;
        // build manually below.
        ..verified
    };
    let spill_latency = {
        use bedrock2_compiler::{compile, CompileOptions, Entry, MmioExtCompiler};
        use lightbulb_system::devices::{Board, SpiConfig, TrafficGen};
        use lightbulb_system::processor::Pipelined;
        let program = lightbulb_system::lightbulb::lightbulb_program(spill_all.driver);
        let image = compile(
            &program,
            &MmioExtCompiler,
            &CompileOptions {
                stack_top: spill_all.ram_bytes,
                stack_size: Some(spill_all.ram_bytes / 4),
                entry: Entry::EventLoop {
                    init: Some("lightbulb_init".to_string()),
                    step: "lightbulb_loop".to_string(),
                },
                optimize: false,
                spill_everything: true,
            },
        )
        .expect("spill-all image compiles");
        let mut cpu = Pipelined::new(
            &image.bytes(),
            spill_all.ram_bytes,
            Board::new(SpiConfig::default()),
            spill_all.pipeline,
        );
        cpu.run(400_000);
        let mut gen = TrafficGen::new(1234);
        cpu.mem.mmio.inject_frame(&gen.command(true));
        let start = cpu.cycle;
        let target = cpu.mem.trace.len();
        let deadline = cpu.cycle + 40_000_000;
        let mut actuated = None;
        while cpu.cycle < deadline && actuated.is_none() {
            cpu.step_cycle();
            actuated = cpu.mem.trace[target..]
                .iter()
                .find(|e| {
                    e.event.kind == riscv_spec::MmioEventKind::Store
                        && e.event.addr == lightbulb_system::lightbulb::layout::GPIO_OUTPUT_VAL
                })
                .map(|e| e.cycle);
        }
        actuated.expect("spill-all system actuates") - start
    };
    println!();
    println!(
        "register-allocation ablation: {} cycles with regalloc vs {} spilling \
         everything ({:.2}× — what the allocator buys)",
        lat[0],
        spill_latency,
        spill_latency as f64 / lat[0] as f64
    );

    // Second observation of §7.2.1: "the vast majority of the running time
    // is spent transferring incoming packet data … over SPI". Sweep the
    // SPI wire speed: if the system is SPI-bound, latency tracks it.
    eprintln!("\nsweeping SPI wire speed (cycles per byte)…");
    let mut rows = Vec::new();
    let mut prev: Option<u64> = None;
    for cpb in [2u32, 8, 32, 128] {
        let cfg = SystemConfig {
            spi: lightbulb_system::devices::SpiConfig {
                cycles_per_byte: cpb,
            },
            ..verified
        };
        let l = packet_to_actuation_latency(&cfg, 99).cycles();
        let growth = prev.map_or("—".to_string(), |p| {
            format!("{:.2}×", l as f64 / p as f64)
        });
        prev = Some(l);
        rows.push(vec![format!("{cpb}"), l.to_string(), growth]);
    }
    println!();
    print!(
        "{}",
        render_table(
            "§7.2.1: SPI-boundedness — latency vs SPI cycles/byte (verified config)",
            &["SPI cycles/byte", "latency (cycles)", "growth"],
            &rows
        )
    );
    println!();
    println!("shape check: at high SPI cost the latency grows with the wire speed,");
    println!("confirming the packet transfer dominates (the paper's observation).");
}

//! Table 3 of the paper: the trusted code base — the specifications one
//! must read and believe (everything else is checked against them).
//!
//! In this reproduction the corresponding artifacts are the trace
//! specifications, the platform layout, the device models (which play the
//! role of the paper's HDL semantics + physical hardware), and the
//! checking substrate itself. Line counts are measured live from the
//! workspace.

use bench::{count_file, emit_json, json_mode, render_table, table_json, workspace_root};
use obs::json::Value;

fn main() {
    let root = workspace_root();
    let count = |rel: &str| count_file(&root.join(rel));

    let rows = vec![
        (
            "Lightbulb app + driver trace spec",
            "crates/lightbulb/src/spec.rs",
            "lightbulb app (27) + LAN9250 (77) + SPI (30) + outputs (10) = 144",
        ),
        (
            "Trace predicate notations",
            "crates/proglogic/src/trace.rs",
            "trace predicate notations (25)",
        ),
        (
            "Platform memory map",
            "crates/lightbulb/src/layout.rs",
            "(folded into driver specs in the paper)",
        ),
        (
            "ISA semantics (execute)",
            "crates/riscv/src/execute.rs",
            "(riscv-coq, excluded from the paper's count)",
        ),
        (
            "Hardware substrate (kami fifo)",
            "crates/kami/src/fifo.rs",
            "semantics of Kami HDL (~400), spread across",
        ),
        (
            "Hardware substrate (kami mem)",
            "crates/kami/src/mem.rs",
            "  the kami crate's primitive modules",
        ),
        (
            "Hardware substrate (kami module)",
            "crates/kami/src/module.rs",
            "",
        ),
    ];

    let mut table = Vec::new();
    let mut total = 0;
    for (name, rel, paper) in &rows {
        let loc = count(rel);
        total += loc.code;
        table.push(vec![
            name.to_string(),
            loc.code.to_string(),
            rel.to_string(),
            paper.to_string(),
        ]);
    }
    table.push(vec![
        "TOTAL (spec-role code)".into(),
        total.to_string(),
        String::new(),
        "~569".into(),
    ]);

    let headers = ["component", "LoC", "file", "paper's corresponding row"];
    if json_mode() {
        let data = Value::obj()
            .field("rows", table_json(&headers, &table))
            .field("total_spec_loc", Value::UInt(u64::from(total)));
        emit_json("table3", data);
        return;
    }
    print!(
        "{}",
        render_table(
            "Table 3: trusted code base (lines of spec-role code, measured)",
            &headers,
            &table
        )
    );
    println!();
    println!("Other TCB (paper: Verilog wrapper, Kami→Bluespec, bsc, yosys/nextpnr, Coq):");
    println!("  here: the Rust compiler and standard library, the `rand`/`proptest`/");
    println!("  `criterion` dev-dependencies, and this harness itself — the usual");
    println!("  trusted substrate of any testing-based (rather than proof-based) check.");
}

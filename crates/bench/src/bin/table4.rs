//! Table 4 of the paper: lines of code per layer, and the overhead of
//! verification ("proof overhead" = (impl + interface + proof) / impl).
//!
//! In this reproduction the proof columns become *checking* code: unit
//! tests, property tests, and the differential/trace checkers. The
//! measured ratios land far below the paper's (proofs in Coq cost ~10× the
//! implementation; executable checking costs ~1–2×) — which is precisely
//! the trade the substitution makes: less assurance per line, far fewer
//! lines (compare the paper's §7.3.2 discussion of accidental proof
//! complexity).

use bench::{count_dir, emit_json, json_mode, render_table, table_json, workspace_root, Loc};
use obs::json::Value;

fn main() {
    let root = workspace_root();
    let layers: &[(&str, &[&str], &str)] = &[
        (
            "lightbulb app+drivers",
            &["crates/lightbulb/src"],
            "paper: m=176 n=130 p=33 q=1443 → 10.1×",
        ),
        (
            "program logic",
            &["crates/proglogic/src"],
            "paper: m=10044 n=208 p=552 q=1785 (impl incl. framework)",
        ),
        (
            "compiler",
            &["crates/compiler/src"],
            "paper: m=1907+931 n=1114 p=1325 q=6654 → 10.8×",
        ),
        (
            "SW/HW interface (ISA+cores)",
            &[
                "crates/riscv/src",
                "crates/kami/src",
                "crates/processor/src",
            ],
            "paper: m=354 n=2053 p=991 q=3804",
        ),
        (
            "end-to-end (integration)",
            &["crates/core/src"],
            "paper: m=48294(excluded libs) n=254 p=74 q=539",
        ),
        (
            "devices & workloads",
            &["crates/devices/src"],
            "paper: physical hardware (not code)",
        ),
    ];

    let mut rows = Vec::new();
    let mut grand = Loc::default();
    for (name, dirs, paper) in layers {
        let mut loc = Loc::default();
        for d in *dirs {
            loc += count_dir(&root.join(d));
        }
        grand += loc;
        let ratio = (loc.code + loc.tests) as f64 / loc.code.max(1) as f64;
        rows.push(vec![
            name.to_string(),
            loc.code.to_string(),
            loc.tests.to_string(),
            format!("{ratio:.2}×"),
            paper.to_string(),
        ]);
    }
    // Workspace-level integration tests count toward the end-to-end row in
    // spirit; report them separately for honesty.
    let ws_tests = count_dir(&root.join("tests"));
    rows.push(vec![
        "workspace tests/".to_string(),
        "0".to_string(),
        (ws_tests.code + ws_tests.tests).to_string(),
        "—".to_string(),
        String::new(),
    ]);
    let total_checking = grand.tests + ws_tests.code + ws_tests.tests;
    rows.push(vec![
        "TOTAL".to_string(),
        grand.code.to_string(),
        total_checking.to_string(),
        format!(
            "{:.2}×",
            (grand.code + total_checking) as f64 / grand.code as f64
        ),
        "paper: ~2.5k impl, ~23k proof (~10×)".to_string(),
    ]);

    let headers = [
        "layer",
        "implementation",
        "checking (tests)",
        "overhead",
        "paper correspondence",
    ];
    if json_mode() {
        let data = Value::obj()
            .field("rows", table_json(&headers, &rows))
            .field("impl_loc", Value::UInt(u64::from(grand.code)))
            .field("checking_loc", Value::UInt(u64::from(total_checking)));
        emit_json("table4", data);
        return;
    }
    print!(
        "{}",
        render_table(
            "Table 4: lines of code per layer (measured)",
            &headers,
            &rows
        )
    );
    println!();
    println!("Shape vs the paper: the paper's machine-checked proofs cost ~10× their");
    println!("implementations, dominated by 'low-insight' proof lines (their Table 4);");
    println!("executable checking costs ~1–2× — the assurance/effort trade-off the");
    println!("paper's §7.3.2 'what if the wishlist were addressed' column anticipates.");
}

//! Interpreter and differential-tester throughput: the measured effect of
//! the predecoded-instruction cache, batched stepping, and the sharded
//! differential sweep. `--json` emits a `bench-report/v1` record to
//! `BENCH_spec_throughput.json`.
//!
//! Four execution cores run the same booted lightbulb image for a fixed
//! instruction budget: the spec machine with the decode cache (the default
//! everyone now gets), the seed configuration (cache off, per-step loop),
//! the single-cycle hardware model, and the pipelined hardware model. The
//! differential section times the same 40-seed compiler sweep serially and
//! sharded across every hardware thread, and self-checks that the sharded
//! sweep's counter report is byte-for-byte deterministic across runs.

use std::time::Instant;

use bench::{counters_json, emit_json, json_mode, render_table};
use lightbulb_system::devices::{Board, SpiConfig};
use lightbulb_system::integration::differential::{
    check_compiler_differential, default_shards, parallel_sweep,
};
use lightbulb_system::integration::{build_image, SystemConfig};
use lightbulb_system::processor::{PipelineConfig, Pipelined, SingleCycle};
use lightbulb_system::riscv::{Memory, SpecMachine};
use obs::json::Value;

const STEPS: u64 = 2_000_000;
const RAM: u32 = 0x1_0000;
const DIFF_SEEDS: std::ops::Range<u64> = 0..40;

struct Row {
    config: &'static str,
    retired: u64,
    secs: f64,
}

impl Row {
    fn rate(&self) -> f64 {
        self.retired as f64 / self.secs
    }
}

fn booted_spec(words: &[u32], icache: bool) -> SpecMachine<Board> {
    let mut m = SpecMachine::new(Memory::with_size(RAM), Board::new(SpiConfig::default()));
    m.set_icache_enabled(icache);
    m.load_program(0, words);
    m
}

fn main() {
    let image = build_image(&SystemConfig::default());
    let words = image.words();
    let bytes = image.bytes();
    let mut rows = Vec::new();

    // Warm-up: fault the image in so the first measured row isn't taxed.
    booted_spec(&words, true)
        .run_block(STEPS / 4)
        .expect("lightbulb runs clean");

    let t0 = Instant::now();
    let mut cached = booted_spec(&words, true);
    cached.run_block(STEPS).expect("lightbulb runs clean");
    rows.push(Row {
        config: "spec cached (run_block + decode cache)",
        retired: cached.instret,
        secs: t0.elapsed().as_secs_f64(),
    });
    let (hits, misses) = (cached.stats.icache_hits, cached.stats.icache_misses);

    let t0 = Instant::now();
    let mut seed = booted_spec(&words, false);
    for _ in 0..STEPS {
        seed.step().expect("lightbulb runs clean");
    }
    rows.push(Row {
        config: "spec uncached (seed: per-step fetch+decode)",
        retired: seed.instret,
        secs: t0.elapsed().as_secs_f64(),
    });

    let t0 = Instant::now();
    let mut sc = SingleCycle::new(&bytes, RAM, Board::new(SpiConfig::default()));
    sc.run_block(STEPS);
    rows.push(Row {
        config: "single-cycle hardware model",
        retired: sc.retired,
        secs: t0.elapsed().as_secs_f64(),
    });

    let t0 = Instant::now();
    let mut pipe = Pipelined::new(
        &bytes,
        RAM,
        Board::new(SpiConfig::default()),
        PipelineConfig::default(),
    );
    pipe.run(STEPS);
    rows.push(Row {
        config: "pipelined hardware model",
        retired: pipe.retired,
        secs: t0.elapsed().as_secs_f64(),
    });

    let speedup = rows[0].rate() / rows[1].rate();

    // Differential sweep: serial vs sharded, plus a determinism self-check
    // (two sharded runs must publish byte-identical counter reports).
    let shards = default_shards();
    let t0 = Instant::now();
    let serial = parallel_sweep(DIFF_SEEDS, 1, |p| check_compiler_differential(p, false));
    let serial_secs = t0.elapsed().as_secs_f64();
    serial.expect_clean("serial differential");

    let t0 = Instant::now();
    let sharded = parallel_sweep(DIFF_SEEDS, shards, |p| {
        check_compiler_differential(p, false)
    });
    let sharded_secs = t0.elapsed().as_secs_f64();
    sharded.expect_clean("sharded differential");

    let again = parallel_sweep(DIFF_SEEDS, shards, |p| {
        check_compiler_differential(p, false)
    });
    let report_a = counters_json(&sharded.counters).render();
    let report_b = counters_json(&again.counters).render();
    let deterministic = report_a == report_b;
    assert!(deterministic, "sharded sweep reports must be reproducible");

    if json_mode() {
        let cores = Value::Arr(
            rows.iter()
                .map(|r| {
                    Value::obj()
                        .field("config", Value::Str(r.config.to_string()))
                        .field("retired", Value::UInt(r.retired))
                        .field("seconds", Value::Float(r.secs))
                        .field("steps_per_sec", Value::Float(r.rate()))
                })
                .collect(),
        );
        let data = Value::obj()
            .field(
                "workload",
                Value::Str("lightbulb boot + polling loop".into()),
            )
            .field("step_budget", Value::UInt(STEPS))
            .field("cores", cores)
            .field("cached_vs_seed_speedup", Value::Float(speedup))
            .field(
                "icache",
                Value::obj()
                    .field("hits", Value::UInt(hits))
                    .field("misses", Value::UInt(misses)),
            )
            .field(
                "differential",
                Value::obj()
                    .field("seeds", Value::UInt(DIFF_SEEDS.end - DIFF_SEEDS.start))
                    .field("serial_seconds", Value::Float(serial_secs))
                    .field("sharded_seconds", Value::Float(sharded_secs))
                    .field("shards", Value::UInt(shards as u64))
                    .field("deterministic", Value::Bool(deterministic))
                    .field("counters", counters_json(&sharded.counters)),
            );
        emit_json("spec_throughput", data);
        return;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                format!("{}", r.retired),
                format!("{:.3} s", r.secs),
                format!("{:.2} Msteps/s", r.rate() / 1e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "interpreter throughput (lightbulb workload, this machine)",
            &["core", "retired", "wall clock", "throughput"],
            &table
        )
    );
    println!();
    println!(
        "decode cache: {hits} hits / {misses} misses ({:.4}% hit rate); \
         cached vs seed speedup: {speedup:.2}x",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    println!(
        "differential sweep ({} seeds): serial {serial_secs:.2} s, \
         {shards}-shard {sharded_secs:.2} s; reports {}",
        DIFF_SEEDS.end - DIFF_SEEDS.start,
        if deterministic {
            "byte-identical across runs"
        } else {
            "NOT deterministic"
        }
    );
}

//! Benchmark and evaluation harness: regenerates every table and figure of
//! the paper's evaluation section (§7). See EXPERIMENTS.md for the
//! experiment index and recorded results.
//!
//! Binaries (one per evaluation artifact):
//!
//! * `table1` — the verified-stack criteria matrix, with this project's
//!   column derived from what the workspace actually implements;
//! * `table2` — the parameterization-across-layers summary, checked
//!   against the real generic parameters in the crates;
//! * `table3` — trusted-code-base line counts;
//! * `table4` — implementation/checking line counts and overhead ratios
//!   per layer;
//! * `fig_perf` — the §7.2.1 latency decomposition
//!   (10× ≈ 1.4× · 1.2× · 2.1× · 2.7× in the paper), measured in
//!   simulated cycles over the same configuration grid;
//! * `verif_perf` — §7.2.2: wall-clock costs of the checking machinery.
//!
//! Criterion benches (`cargo bench`) measure the wall-clock performance of
//! the simulators and checkers themselves.

use lightbulb_system::devices::{Board, TrafficGen};
use lightbulb_system::integration::{build_image, ProcessorKind, SystemConfig};
use lightbulb_system::processor::{Pipelined, SingleCycle};
use obs::json::Value;
use riscv_spec::MmioEventKind;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Workspace root (this crate lives at `crates/bench`).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench is two levels below the root")
        .to_path_buf()
}

/// Line counts for one file: code vs `#[cfg(test)]` checking code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Loc {
    /// Non-blank lines outside test modules.
    pub code: u32,
    /// Non-blank lines inside `#[cfg(test)]` modules (and test files).
    pub tests: u32,
}

impl std::ops::AddAssign for Loc {
    fn add_assign(&mut self, rhs: Loc) {
        self.code += rhs.code;
        self.tests += rhs.tests;
    }
}

/// Counts lines in one Rust file, splitting at the `#[cfg(test)]` marker
/// (our convention puts the test module last in each file).
pub fn count_file(path: &Path) -> Loc {
    let Ok(text) = fs::read_to_string(path) else {
        return Loc::default();
    };
    let mut loc = Loc::default();
    let mut in_tests = false;
    for line in text.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if line.trim().is_empty() {
            continue;
        }
        if in_tests {
            loc.tests += 1;
        } else {
            loc.code += 1;
        }
    }
    loc
}

/// Recursively counts a directory of Rust sources. Files under a `tests/`
/// directory count entirely as checking code.
pub fn count_dir(path: &Path) -> Loc {
    let mut total = Loc::default();
    let Ok(entries) = fs::read_dir(path) else {
        return total;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            total += count_dir(&p);
        } else if p.extension().is_some_and(|e| e == "rs") {
            let mut loc = count_file(&p);
            if p.ancestors()
                .any(|a| a.file_name().is_some_and(|n| n == "tests"))
            {
                loc = Loc {
                    code: 0,
                    tests: loc.code + loc.tests,
                };
            }
            total += loc;
        }
    }
    total
}

/// Renders a simple aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", line(&hdr, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        let _ = writeln!(out, "{}", line(row, &widths));
    }
    out
}

/// True when the binary was invoked with `--json`: emit a machine-readable
/// record (via [`emit_json`]) instead of the human table.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// The machine-readable twin of [`render_table`]: each row becomes an
/// object keyed by the column headers.
pub fn table_json(headers: &[&str], rows: &[Vec<String>]) -> Value {
    Value::Arr(
        rows.iter()
            .map(|row| {
                let mut obj = Value::obj();
                for (h, cell) in headers.iter().zip(row) {
                    obj = obj.field(h, Value::Str(cell.clone()));
                }
                obj
            })
            .collect(),
    )
}

/// A [`obs::Counters`] registry as a JSON object, name → value, in the
/// registry's (lexicographic) order.
pub fn counters_json(c: &obs::Counters) -> Value {
    Value::Obj(
        c.iter()
            .map(|(name, value)| (name.to_string(), Value::UInt(value)))
            .collect(),
    )
}

/// Wraps `data` in the `BENCH_*.json` record envelope (schema tag, bench
/// name) without printing or writing anything.
pub fn json_record(bin: &str, data: Value) -> Value {
    Value::obj()
        .field("schema", Value::Str("bench-report/v1".into()))
        .field("bench", Value::Str(bin.into()))
        .field("data", data)
}

/// Emits one bench record: prints it to stdout as a single JSON document
/// and writes it to `BENCH_<bin>.json` at the workspace root. The rendered
/// text is parsed back with [`obs::json::parse`] first — a bench must
/// never publish an invalid record.
///
/// # Panics
///
/// Panics if the rendered document fails to re-parse (an `obs::json` bug,
/// not an input error).
pub fn emit_json(bin: &str, data: Value) {
    let text = json_record(bin, data).render();
    obs::json::parse(&text).unwrap_or_else(|e| panic!("{bin}: emitted invalid JSON: {e}"));
    println!("{text}");
    let path = workspace_root().join(format!("BENCH_{bin}.json"));
    if let Err(e) = fs::write(&path, format!("{text}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// One latency measurement: packet handover → GPIO actuation.
#[derive(Clone, Copy, Debug)]
pub struct LatencyReport {
    /// Cycle at which the frame was injected (steady-state polling).
    pub injected_at: u64,
    /// Cycle of the actuating GPIO write.
    pub actuated_at: u64,
}

impl LatencyReport {
    /// The latency in simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.actuated_at - self.injected_at
    }
}

/// Warm-up budget: boot plus a few idle polls, all configurations.
const WARMUP_CYCLES: u64 = 400_000;
/// Post-injection budget.
const ACTUATION_BUDGET: u64 = 10_000_000;

/// Measures packet→actuation latency in simulated cycles for one system
/// configuration (the measurement behind `fig_perf`).
///
/// # Panics
///
/// Panics if the system fails to boot or actuate within generous budgets —
/// that would be a workspace bug, not a measurement.
pub fn packet_to_actuation_latency(config: &SystemConfig, seed: u64) -> LatencyReport {
    let image = build_image(config);
    let board = Board::new(config.spi);
    let mut gen = TrafficGen::new(seed);
    let frame = gen.command(true);

    match config.processor {
        ProcessorKind::Pipelined => {
            let mut cpu = Pipelined::new(&image.bytes(), config.ram_bytes, board, config.pipeline);
            // Boot and settle into the polling loop: run until the trace has
            // stopped growing structurally (boot done) — detectable as "no
            // new events for a while" is fragile; instead run a fixed warm-up
            // and require at least one poll to have happened.
            cpu.run(WARMUP_CYCLES);
            assert!(!cpu.mem.trace.is_empty(), "boot must produce I/O");
            let injected_at = cpu.cycle;
            cpu.mem.mmio.inject_frame(&frame);
            let target = cpu.mem.trace.len();
            let mut actuated_at = None;
            let deadline = cpu.cycle + ACTUATION_BUDGET;
            while cpu.cycle < deadline {
                cpu.step_cycle();
                if let Some(ev) = cpu.mem.trace[target..].iter().find(|e| {
                    e.event.kind == MmioEventKind::Store
                        && e.event.addr == lightbulb_system::lightbulb::layout::GPIO_OUTPUT_VAL
                }) {
                    actuated_at = Some(ev.cycle);
                    break;
                }
            }
            LatencyReport {
                injected_at,
                actuated_at: actuated_at.expect("system must actuate within budget"),
            }
        }
        ProcessorKind::SingleCycle => {
            let mut cpu = SingleCycle::new(&image.bytes(), config.ram_bytes, board);
            cpu.run(WARMUP_CYCLES);
            let injected_at = cpu.cycle;
            cpu.mem.mmio.inject_frame(&frame);
            let target = cpu.mem.trace.len();
            let mut actuated_at = None;
            let deadline = cpu.cycle + ACTUATION_BUDGET;
            while cpu.cycle < deadline {
                cpu.step();
                if let Some(ev) = cpu.mem.trace[target..].iter().find(|e| {
                    e.event.kind == MmioEventKind::Store
                        && e.event.addr == lightbulb_system::lightbulb::layout::GPIO_OUTPUT_VAL
                }) {
                    actuated_at = Some(ev.cycle);
                    break;
                }
            }
            LatencyReport {
                injected_at,
                actuated_at: actuated_at.expect("system must actuate within budget"),
            }
        }
        ProcessorKind::SpecMachine => {
            unimplemented!("latency is measured on the hardware models")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counting_splits_tests() {
        let root = workspace_root();
        let loc = count_file(&root.join("crates/riscv/src/word.rs"));
        assert!(loc.code > 50, "{loc:?}");
        assert!(loc.tests > 30, "{loc:?}");
    }

    #[test]
    fn workspace_root_is_found() {
        assert!(workspace_root().join("Cargo.toml").exists());
        assert!(workspace_root().join("DESIGN.md").exists());
    }

    #[test]
    fn json_records_round_trip() {
        let data = table_json(&["name", "value"], &[vec!["stalls".into(), "17".into()]]);
        let text = json_record("demo", data).render();
        let doc = obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("demo"));
        let rows = doc.get("data").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("value").unwrap().as_str(), Some("17"));
    }

    #[test]
    fn tables_render() {
        let t = render_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("333"));
    }
}

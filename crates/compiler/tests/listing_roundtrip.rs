//! Cross-validation of the compiler's listing output against the
//! assembler: every line the linker prints must parse back to exactly the
//! instruction it came from — so listings are a faithful interchange
//! format for reviewing compiler output.

use bedrock2::dsl::*;
use bedrock2::{Function, Program};
use bedrock2_compiler::{compile, CompileOptions, MmioExtCompiler, NoExtCompiler};
use riscv_spec::parse_program;

#[test]
fn listing_parses_back_to_the_same_instructions() {
    let divmod = Function::new(
        "divmod",
        &["a", "b"],
        &["q", "r"],
        block([
            set("q", divu(var("a"), var("b"))),
            set("r", remu(var("a"), var("b"))),
        ]),
    );
    let main = Function::new(
        "main",
        &[],
        &["x"],
        block([
            call(&["x", "y"], "divmod", [lit(100), lit(7)]),
            while_(var("y"), set("y", sub(var("y"), lit(1)))),
            stackalloc("buf", 8, store4(var("buf"), var("x"))),
        ]),
    );
    let image = compile(
        &Program::from_functions([divmod, main]),
        &NoExtCompiler,
        &CompileOptions::default(),
    )
    .unwrap();

    let parsed = parse_program(&image.listing()).expect("listing must be parseable assembly");
    assert_eq!(parsed, image.insts);
}

#[test]
fn mmio_code_listings_also_roundtrip() {
    let main = Function::new(
        "main",
        &[],
        &[],
        block([
            interact(&[], "MMIOWRITE", [lit(0x1001_200C), lit(2)]),
            interact(&["v"], "MMIOREAD", [lit(0x1002_404C)]),
        ]),
    );
    let image = compile(
        &Program::from_functions([main]),
        &MmioExtCompiler,
        &CompileOptions::default(),
    )
    .unwrap();
    let parsed = parse_program(&image.listing()).unwrap();
    assert_eq!(parsed, image.insts);
}

//! Phase 1: flattening Bedrock2 expressions into FlatImp three-address code.
//!
//! Every nested expression becomes a sequence of statements computing its
//! value into a fresh numbered temporary. Named source variables map to
//! stable low-numbered [`FlatVar`]s so that a source variable and its FlatImp
//! counterpart always hold the same value — the simulation relation of the
//! paper's phase-1 proof, which the property tests in this crate check
//! differentially.

use crate::flatimp::{FStmt, FlatFunction, FlatProgram, FlatVar};
use bedrock2::ast::{Expr, Function, Program, Stmt};
use std::collections::HashMap;

/// Variable-numbering context for one function.
#[derive(Debug, Default)]
struct Namer {
    names: HashMap<String, FlatVar>,
    next: FlatVar,
}

impl Namer {
    fn named(&mut self, x: &str) -> FlatVar {
        if let Some(v) = self.names.get(x) {
            *v
        } else {
            let v = self.next;
            self.next += 1;
            self.names.insert(x.to_string(), v);
            v
        }
    }

    fn fresh(&mut self) -> FlatVar {
        let v = self.next;
        self.next += 1;
        v
    }
}

fn flatten_expr(e: &Expr, n: &mut Namer, out: &mut Vec<FStmt<FlatVar>>) -> FlatVar {
    match e {
        Expr::Literal(v) => {
            let t = n.fresh();
            out.push(FStmt::Lit { dest: t, value: *v });
            t
        }
        Expr::Var(x) => n.named(x),
        Expr::Load(size, addr) => {
            let a = flatten_expr(addr, n, out);
            let t = n.fresh();
            out.push(FStmt::Load {
                dest: t,
                size: *size,
                addr: a,
            });
            t
        }
        Expr::Op(op, ea, eb) => {
            let a = flatten_expr(ea, n, out);
            let b = flatten_expr(eb, n, out);
            let t = n.fresh();
            out.push(FStmt::Op {
                dest: t,
                op: *op,
                a,
                b,
            });
            t
        }
    }
}

fn flatten_stmt(s: &Stmt, n: &mut Namer) -> FStmt<FlatVar> {
    match s {
        Stmt::Skip => FStmt::Skip,
        Stmt::Set(x, e) => {
            let mut out = Vec::new();
            let v = flatten_expr(e, n, &mut out);
            let dest = n.named(x);
            // Assign through a copy so that `x = x + 1` works even though
            // the temp was computed from the old value of x.
            out.push(FStmt::Copy { dest, src: v });
            FStmt::Seq(out)
        }
        Stmt::Store(size, ea, ev) => {
            let mut out = Vec::new();
            let a = flatten_expr(ea, n, &mut out);
            let v = flatten_expr(ev, n, &mut out);
            out.push(FStmt::Store {
                size: *size,
                addr: a,
                value: v,
            });
            FStmt::Seq(out)
        }
        Stmt::If(c, t, e) => {
            let mut out = Vec::new();
            let cv = flatten_expr(c, n, &mut out);
            let then_ = Box::new(flatten_stmt(t, n));
            let else_ = Box::new(flatten_stmt(e, n));
            out.push(FStmt::If {
                cond: cv,
                then_,
                else_,
            });
            FStmt::Seq(out)
        }
        Stmt::While(c, body) => {
            let mut cond_stmts = Vec::new();
            let cv = flatten_expr(c, n, &mut cond_stmts);
            let body = Box::new(flatten_stmt(body, n));
            FStmt::Loop {
                cond_stmts: Box::new(FStmt::Seq(cond_stmts)),
                cond: cv,
                body,
            }
        }
        Stmt::Block(ss) => FStmt::Seq(ss.iter().map(|s| flatten_stmt(s, n)).collect()),
        Stmt::Call(rets, f, args) => {
            let mut out = Vec::new();
            let argv: Vec<FlatVar> = args.iter().map(|a| flatten_expr(a, n, &mut out)).collect();
            let retv: Vec<FlatVar> = rets.iter().map(|r| n.named(r)).collect();
            out.push(FStmt::Call {
                rets: retv,
                f: f.clone(),
                args: argv,
            });
            FStmt::Seq(out)
        }
        Stmt::Interact(rets, action, args) => {
            let mut out = Vec::new();
            let argv: Vec<FlatVar> = args.iter().map(|a| flatten_expr(a, n, &mut out)).collect();
            let retv: Vec<FlatVar> = rets.iter().map(|r| n.named(r)).collect();
            out.push(FStmt::Interact {
                rets: retv,
                action: action.clone(),
                args: argv,
            });
            FStmt::Seq(out)
        }
        Stmt::Stackalloc(x, nbytes, body) => {
            let dest = n.named(x);
            let body = Box::new(flatten_stmt(body, n));
            FStmt::Stackalloc {
                dest,
                nbytes: nbytes.div_ceil(4) * 4,
                body,
            }
        }
    }
}

/// Flattens one function.
pub fn flatten_function(f: &Function) -> FlatFunction<FlatVar> {
    let mut n = Namer::default();
    let params: Vec<FlatVar> = f.params.iter().map(|p| n.named(p)).collect();
    let body = flatten_stmt(&f.body, &mut n);
    let rets: Vec<FlatVar> = f.rets.iter().map(|r| n.named(r)).collect();
    FlatFunction {
        name: f.name.clone(),
        params,
        rets,
        body,
        nvars: n.next,
    }
}

/// Flattens a whole program.
pub fn flatten_program(p: &Program) -> FlatProgram<FlatVar> {
    let mut out = FlatProgram::default();
    for f in p.functions.values() {
        out.functions.insert(f.name.clone(), flatten_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatimp::FlatInterp;
    use bedrock2::dsl::*;
    use bedrock2::semantics::{Interp, NoExt};
    use riscv_spec::Memory;

    /// Differentially checks one no-argument function against its flattened
    /// form: same return values, same memory, same trace.
    fn check_equivalent(f: Function, args: &[u32]) {
        let name = f.name.clone();
        let p = Program::from_functions([f]);
        let fp = flatten_program(&p);

        let mut src = Interp::new(&p, Memory::with_size(0x1000), NoExt);
        let mut flat = FlatInterp::new(&fp, Memory::with_size(0x1000), NoExt);
        let a = src.call(&name, args);
        let b = flat.call(&name, args);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x, y, "return values differ");
                assert_eq!(src.mem.as_bytes(), flat.mem.as_bytes(), "memory differs");
            }
            (a, b) => panic!("outcomes differ: src={a:?} flat={b:?}"),
        }
    }

    #[test]
    fn self_assignment_uses_old_value() {
        check_equivalent(
            Function::new(
                "f",
                &["x"],
                &["x"],
                block([
                    set("x", add(var("x"), lit(1))),
                    set("x", mul(var("x"), var("x"))),
                ]),
            ),
            &[4],
        );
    }

    #[test]
    fn loop_condition_is_recomputed() {
        check_equivalent(
            Function::new(
                "f",
                &["n"],
                &["s"],
                block([
                    set("s", lit(0)),
                    while_(
                        ltu(lit(0), var("n")),
                        block([
                            set("s", add(var("s"), var("n"))),
                            set("n", sub(var("n"), lit(1))),
                        ]),
                    ),
                ]),
            ),
            &[7],
        );
    }

    #[test]
    fn memory_operations_flatten() {
        check_equivalent(
            Function::new(
                "f",
                &["p"],
                &["v"],
                block([
                    store4(var("p"), lit(0xABCD)),
                    store1(add(var("p"), lit(5)), lit(0x7F)),
                    set("v", add(load4(var("p")), load1(add(var("p"), lit(5))))),
                ]),
            ),
            &[0x100],
        );
    }

    #[test]
    fn nested_if_flattens() {
        check_equivalent(
            Function::new(
                "f",
                &["a", "b"],
                &["r"],
                if_(
                    ltu(var("a"), var("b")),
                    if_(eq(var("a"), lit(0)), set("r", lit(1)), set("r", lit(2))),
                    set("r", lit(3)),
                ),
            ),
            &[0, 5],
        );
    }

    #[test]
    fn stackalloc_rounds_to_words() {
        let f = Function::new("f", &[], &[], stackalloc("b", 6, Stmt::Skip));
        use bedrock2::ast::Stmt;
        let ff = flatten_function(&f);
        match ff.body {
            FStmt::Stackalloc { nbytes, .. } => assert_eq!(nbytes, 8),
            other => panic!("unexpected flattening: {other:?}"),
        }
    }

    #[test]
    fn params_get_lowest_numbers() {
        let f = Function::new("f", &["a", "b"], &["c"], set("c", add(var("a"), var("b"))));
        let ff = flatten_function(&f);
        assert_eq!(ff.params, vec![0, 1]);
        assert!(ff.nvars >= 3);
    }
}

//! The Bedrock2 compiler: a faithful executable reproduction of the
//! three-phase verified compiler of *Integration Verification across
//! Software and Hardware for a Simple Embedded System* (PLDI 2021, §5.3).
//!
//! ```text
//! Bedrock2 source ──[flatten]──▶ FlatImp (variables)
//!                 ──[regalloc]─▶ FlatImp (registers)
//!                 ──[rv32]─────▶ position-independent RV32IM
//!                 ──[link]─────▶ boot image for address 0
//! ```
//!
//! The paper's compiler-correctness *proof* is replaced here by pervasive
//! differential testing: the integration tests run every generated binary
//! on the `riscv-spec` machine and compare observable behavior (I/O trace
//! and results) against the Bedrock2 interpreter, over both hand-written
//! and randomly generated programs.
//!
//! Like the paper's compiler, this one is parameterized over an
//! *external-calls compiler* ([`ExtCallCompiler`], §6.3) that decides how
//! to realize `Interact` statements — [`MmioExtCompiler`] turns `MMIOREAD`
//! and `MMIOWRITE` into bare `lw`/`sw` — and it statically bounds stack
//! usage so the generated program provably (here: checkably) never runs
//! out of memory (§5.3).
//!
//! # Examples
//!
//! Compile and run a function that computes 6·7:
//!
//! ```
//! use bedrock2::dsl::*;
//! use bedrock2::{Function, Program};
//! use bedrock2_compiler::{compile, CompileOptions, NoExtCompiler};
//! use riscv_spec::{Memory, NoMmio, SpecMachine};
//!
//! let main = Function::new("main", &[], &["r"], set("r", mul(lit(6), lit(7))));
//! let prog = Program::from_functions([main]);
//! let image = compile(&prog, &NoExtCompiler, &CompileOptions::default()).unwrap();
//!
//! let mut m = SpecMachine::new(Memory::with_size(0x1_0000), NoMmio);
//! m.load_program(0, &image.words());
//! m.run_until_ebreak(10_000).unwrap();
//! // The single return value is at stack_top - 4 by the calling convention.
//! assert_eq!(m.mem.load_u32(image.stack_top - 4).unwrap(), 42);
//! ```

pub mod flatimp;
pub mod flatten;
pub mod link;
pub mod opt;
pub mod regalloc;
pub mod rv32;

pub use link::{CompileOptions, CompileStats, CompiledProgram, Entry};
pub use regalloc::Loc;
pub use rv32::{CompileError, ExtCallCompiler, ExtEmitter, MmioExtCompiler, NoExtCompiler};

use bedrock2::ast::Program;
use std::collections::BTreeMap;
use std::time::Instant;

/// Compiles a Bedrock2 program to a linked RV32IM boot image.
///
/// # Errors
///
/// * [`CompileError::UnknownFunction`] / [`CompileError::Recursion`] for
///   ill-formed programs (as reported by [`Program::check`]);
/// * [`CompileError::UnsupportedExternal`] when `ext` rejects an action;
/// * [`CompileError::BadEntry`] when the entry function is missing or takes
///   parameters;
/// * [`CompileError::FrameTooLarge`] / [`CompileError::StackTooSmall`] for
///   resource violations.
pub fn compile(
    prog: &Program,
    ext: &dyn ExtCallCompiler,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut stats = CompileStats::default();
    let micros = |t: Instant| t.elapsed().as_micros() as u64;

    // Well-formedness first (the paper's compiler relies on the program
    // logic having established this; a library must check).
    let t = Instant::now();
    if let Some(problem) = prog.check().into_iter().next() {
        if problem.contains("recursive") {
            return Err(CompileError::Recursion(problem));
        }
        return Err(CompileError::UnknownFunction(problem));
    }
    stats.check_micros = micros(t);

    // Entry functions must take no parameters.
    let entry_names: Vec<&str> = match &opts.entry {
        Entry::MainThenHalt { main } => vec![main.as_str()],
        Entry::EventLoop { init, step } => init
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(step.as_str()))
            .collect(),
    };
    for name in entry_names {
        match prog.function(name) {
            Some(f) if f.params.is_empty() => {}
            _ => return Err(CompileError::BadEntry(name.to_string())),
        }
    }

    let prog = if opts.optimize {
        let t = Instant::now();
        let optimized = opt::optimize_program(prog);
        stats.opt_micros = micros(t);
        optimized
    } else {
        prog.clone()
    };

    let t = Instant::now();
    let flat = flatten::flatten_program(&prog);
    stats.flatten_micros = micros(t);

    let mut codes = BTreeMap::new();
    for (name, f) in &flat.functions {
        let t = Instant::now();
        let alloc = if opts.spill_everything {
            regalloc::allocate_spill_all(f)
        } else {
            regalloc::allocate(f)
        };
        debug_assert!(
            regalloc::verify_allocation(f, &alloc).is_ok(),
            "register allocation failed its own verification for {name}"
        );
        stats.regalloc_micros += micros(t);
        stats.spill_slots += u64::from(alloc.nspills);

        let t = Instant::now();
        let rf = regalloc::apply_allocation(f, &alloc);
        let code = rv32::compile_function(&rf, &alloc.used_regs, alloc.nspills, ext)?;
        stats.codegen_micros += micros(t);
        stats.functions += 1;
        codes.insert(name.clone(), code);
    }

    let t = Instant::now();
    let mut image = link::link(codes, opts)?;
    stats.link_micros = micros(t);
    stats.instructions = image.insts.len() as u64;
    image.stats = stats;
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::ast::Function;
    use bedrock2::dsl::*;
    use riscv_spec::{AccessSize, Memory, MmioHandler, NoMmio, SpecMachine, StepOutcome};

    /// Compiles `prog` and runs it on the spec machine until `ebreak`,
    /// returning the machine for inspection.
    fn run(prog: &Program, opts: &CompileOptions) -> (CompiledProgram, SpecMachine<NoMmio>) {
        let image = compile(prog, &NoExtCompiler, opts).expect("compilation should succeed");
        let mut m = SpecMachine::new(Memory::with_size(0x1_0000), NoMmio);
        m.load_program(0, &image.words());
        match m.run_until_ebreak(1_000_000) {
            Ok(StepOutcome::Halted { .. }) => {}
            other => panic!(
                "program did not halt cleanly: {other:?}\n{}",
                image.listing()
            ),
        }
        (image, m)
    }

    /// Value of return slot `j` (of `n` total) after `main` returned.
    fn ret_slot(m: &SpecMachine<NoMmio>, image: &CompiledProgram, j: u32, n: u32) -> u32 {
        m.mem
            .load_u32(image.stack_top - 4 * n + 4 * j)
            .expect("return slot in RAM")
    }

    #[test]
    fn constant_return() {
        let main = Function::new("main", &[], &["r"], set("r", lit(12345)));
        let p = Program::from_functions([main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 1), 12345);
    }

    #[test]
    fn large_literals_via_lui() {
        let main = Function::new("main", &[], &["r"], set("r", lit(0xDEAD_BEEF)));
        let p = Program::from_functions([main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 1), 0xDEAD_BEEF);
    }

    #[test]
    fn loop_and_arithmetic() {
        // sum of 1..=100 = 5050
        let main = Function::new(
            "main",
            &[],
            &["s"],
            block([
                set("s", lit(0)),
                set("n", lit(100)),
                while_(
                    var("n"),
                    block([
                        set("s", add(var("s"), var("n"))),
                        set("n", sub(var("n"), lit(1))),
                    ]),
                ),
            ]),
        );
        let p = Program::from_functions([main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 1), 5050);
    }

    #[test]
    fn function_calls_with_tuple_returns() {
        let divmod = Function::new(
            "divmod",
            &["a", "b"],
            &["q", "r"],
            block([
                set("q", divu(var("a"), var("b"))),
                set("r", remu(var("a"), var("b"))),
            ]),
        );
        let main = Function::new(
            "main",
            &[],
            &["x", "y"],
            call(&["x", "y"], "divmod", [lit(47), lit(10)]),
        );
        let p = Program::from_functions([divmod, main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 2), 4);
        assert_eq!(ret_slot(&m, &image, 1, 2), 7);
    }

    #[test]
    fn nested_calls_preserve_caller_registers() {
        let id = Function::new("id", &["x"], &["x"], bedrock2::ast::Stmt::Skip);
        let main = Function::new(
            "main",
            &[],
            &["r"],
            block([
                set("a", lit(11)),
                set("b", lit(22)),
                call(&["c"], "id", [lit(33)]),
                // a and b must have survived the call.
                set("r", add(add(var("a"), var("b")), var("c"))),
            ]),
        );
        let p = Program::from_functions([id, main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 1), 66);
    }

    #[test]
    fn memory_and_branches() {
        let main = Function::new(
            "main",
            &[],
            &["r"],
            block([
                store4(lit(0x200), lit(7)),
                store1(lit(0x204), lit(0xFF)),
                if_(
                    ltu(load4(lit(0x200)), load1(lit(0x204))),
                    set("r", lit(1)),
                    set("r", lit(0)),
                ),
            ]),
        );
        let p = Program::from_functions([main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 1), 1);
        assert_eq!(m.mem.load_u32(0x200).unwrap(), 7);
    }

    #[test]
    fn stackalloc_buffers_work_compiled() {
        let main = Function::new(
            "main",
            &[],
            &["r"],
            stackalloc(
                "buf",
                16,
                block([
                    store4(var("buf"), lit(3)),
                    store4(add(var("buf"), lit(4)), lit(4)),
                    set("r", mul(load4(var("buf")), load4(add(var("buf"), lit(4))))),
                ]),
            ),
        );
        let p = Program::from_functions([main]);
        let (image, m) = run(&p, &CompileOptions::default());
        assert_eq!(ret_slot(&m, &image, 0, 1), 12);
    }

    #[test]
    fn spilling_under_register_pressure_is_correct() {
        // 30 simultaneously live variables forces spills; the checksum
        // verifies every value survived.
        let mut stmts = Vec::new();
        for i in 0..30u32 {
            stmts.push(set(&format!("v{i}"), add(var("x"), lit(i))));
        }
        let mut sum = var("v0");
        for i in 1..30 {
            sum = add(sum, var(&format!("v{i}")));
        }
        stmts.push(set("r", sum));
        let mut all = vec![set("x", lit(1000))];
        all.extend(stmts);
        let main = Function::new("main", &[], &["r"], block(all));
        let p = Program::from_functions([main]);
        let (image, m) = run(&p, &CompileOptions::default());
        // Σ (1000 + i) for i in 0..30 = 30*1000 + 435
        assert_eq!(ret_slot(&m, &image, 0, 1), 30_435);
    }

    #[test]
    fn mmio_external_calls_compile_to_lw_sw() {
        #[derive(Default)]
        struct Dev {
            reg: u32,
        }
        impl MmioHandler for Dev {
            fn is_mmio(&self, addr: u32, _s: AccessSize) -> bool {
                (0x1000_0000..0x1000_0010).contains(&addr)
            }
            fn load(&mut self, _a: u32, _s: AccessSize) -> u32 {
                self.reg + 1
            }
            fn store(&mut self, _a: u32, _s: AccessSize, v: u32) {
                self.reg = v;
            }
        }
        let main = Function::new(
            "main",
            &[],
            &["r"],
            block([
                interact(&[], "MMIOWRITE", [lit(0x1000_0000), lit(41)]),
                interact(&["r"], "MMIOREAD", [lit(0x1000_0004)]),
            ]),
        );
        let p = Program::from_functions([main]);
        let image = compile(&p, &MmioExtCompiler, &CompileOptions::default()).unwrap();
        let mut m = SpecMachine::new(Memory::with_size(0x1_0000), Dev::default());
        m.load_program(0, &image.words());
        m.run_until_ebreak(100_000).unwrap();
        assert_eq!(m.mem.load_u32(image.stack_top - 4).unwrap(), 42);
        assert_eq!(
            m.trace,
            vec![
                riscv_spec::MmioEvent::store(0x1000_0000, 41),
                riscv_spec::MmioEvent::load(0x1000_0004, 42),
            ]
        );
    }

    #[test]
    fn optimized_and_naive_agree() {
        let helper = Function::new("twice", &["x"], &["y"], set("y", mul(var("x"), lit(2))));
        let main = Function::new(
            "main",
            &[],
            &["r"],
            block([
                set("a", add(lit(20), lit(1))),
                call(&["b"], "twice", [var("a")]),
                set("dead", mul(var("b"), lit(1000))),
                set("r", var("b")),
            ]),
        );
        let p = Program::from_functions([helper, main]);
        let naive = run(&p, &CompileOptions::default()).1;
        let opt = run(
            &p,
            &CompileOptions {
                optimize: true,
                ..CompileOptions::default()
            },
        )
        .1;
        let top = CompileOptions::default().stack_top;
        assert_eq!(
            naive.mem.load_u32(top - 4).unwrap(),
            opt.mem.load_u32(top - 4).unwrap()
        );
        assert_eq!(naive.mem.load_u32(top - 4).unwrap(), 42);
    }

    #[test]
    fn optimizer_shortens_the_program() {
        let helper = Function::new("bump", &["x"], &["y"], set("y", add(var("x"), lit(1))));
        let main = Function::new(
            "main",
            &[],
            &["r"],
            block([
                call(&["a"], "bump", [lit(1)]),
                call(&["b"], "bump", [var("a")]),
                set("r", var("b")),
            ]),
        );
        let p = Program::from_functions([helper, main]);
        let naive = compile(&p, &NoExtCompiler, &CompileOptions::default()).unwrap();
        let opt = compile(
            &p,
            &NoExtCompiler,
            &CompileOptions {
                optimize: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(
            opt.insts.len() < naive.insts.len(),
            "optimizer should shrink code: {} vs {}",
            opt.insts.len(),
            naive.insts.len()
        );
    }

    #[test]
    fn recursion_is_a_compile_error() {
        let f = Function::new("main", &[], &[], call(&[], "main", []));
        let p = Program::from_functions([f]);
        assert!(matches!(
            compile(&p, &NoExtCompiler, &CompileOptions::default()),
            Err(CompileError::Recursion(_))
        ));
    }

    #[test]
    fn entry_with_params_is_rejected() {
        let f = Function::new("main", &["x"], &[], bedrock2::ast::Stmt::Skip);
        let p = Program::from_functions([f]);
        assert!(matches!(
            compile(&p, &NoExtCompiler, &CompileOptions::default()),
            Err(CompileError::BadEntry(_))
        ));
    }

    #[test]
    fn stack_bound_is_enforced() {
        let leaf = Function::new(
            "leaf",
            &[],
            &[],
            stackalloc("b", 512, bedrock2::ast::Stmt::Skip),
        );
        let main = Function::new("main", &[], &[], call(&[], "leaf", []));
        let p = Program::from_functions([leaf, main]);
        let err = compile(
            &p,
            &NoExtCompiler,
            &CompileOptions {
                stack_size: Some(256),
                ..CompileOptions::default()
            },
        );
        assert!(matches!(err, Err(CompileError::StackTooSmall { .. })));
        // With a roomier stack it compiles and reports its true usage.
        let ok = compile(
            &p,
            &NoExtCompiler,
            &CompileOptions {
                stack_size: Some(4096),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(ok.max_stack_usage >= 512);
    }

    #[test]
    fn event_loop_image_never_halts() {
        let step = Function::new("step", &[], &[], bedrock2::ast::Stmt::Skip);
        let p = Program::from_functions([step]);
        let image = compile(
            &p,
            &NoExtCompiler,
            &CompileOptions {
                entry: Entry::EventLoop {
                    init: None,
                    step: "step".into(),
                },
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let mut m = SpecMachine::new(Memory::with_size(0x1_0000), NoMmio);
        m.load_program(0, &image.words());
        assert_eq!(m.run_until_ebreak(10_000).unwrap(), StepOutcome::OutOfFuel);
    }
}

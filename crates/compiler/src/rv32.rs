//! Phase 3: code generation from "FlatImp with registers" to RV32IM.
//!
//! Generated code is position independent (all control flow is pc-relative,
//! as in the paper, §5.3) and uses a simple stack discipline:
//!
//! ```text
//! caller sp ──────────────────────────┐ (high addresses)
//!   ret j   at  F − 4·n_rets + 4·j    │ written by callee epilogue
//!   arg i   at  F − 4·(n_args+n_rets) + 4·i   written by caller
//!   ra      at  A + 4·(n_spills + n_saved)
//!   saved m at  A + 4·n_spills + 4·m  │ callee-saved registers
//!   spill k at  A + 4·k               │ register-allocator spill slots
//!   stackalloc area  [0, A)           │ one disjoint region per site
//! callee sp ──────────────────────────┘ (after the prologue)
//! ```
//!
//! where `F` is the frame size. Every allocatable register is callee-saved
//! (the paper's compiler "does not … exploit caller-saved registers",
//! §7.2.1), so a call preserves all caller state except `ra`, which the
//! caller's own prologue already saved. Because frame sizes are static and
//! recursion is rejected, the total stack requirement of a program is a
//! static quantity — computed in [`crate::link`] — which is how this
//! compiler, like the paper's, can promise the application never runs out
//! of memory.

use crate::flatimp::{FStmt, FlatFunction};
use crate::regalloc::Loc;
use bedrock2::ast::{BinOp, Size};
use riscv_spec::{Instruction, Reg};
use std::fmt;

/// Scratch register for the first operand / general temporaries.
pub const T0: Reg = Reg::X5;
/// Scratch register for the second operand.
pub const T1: Reg = Reg::X6;
/// Scratch register for destinations that live in spill slots.
pub const T2: Reg = Reg::X7;

/// Compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A call targets a function that is not part of the program.
    UnknownFunction(String),
    /// The program contains (mutual) recursion, which the static stack
    /// discipline cannot support.
    Recursion(String),
    /// A function's frame exceeds what the prologue addressing supports.
    FrameTooLarge {
        /// The offending function.
        function: String,
        /// Its frame size in bytes.
        size: u32,
    },
    /// The external-calls compiler does not know this action.
    UnsupportedExternal(String),
    /// The program's worst-case stack usage exceeds the configured region.
    StackTooSmall {
        /// Bytes required in the worst case.
        required: u32,
        /// Bytes available.
        available: u32,
    },
    /// The entry function named in the options does not exist or has the
    /// wrong signature (entry functions take no parameters).
    BadEntry(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CompileError::*;
        match self {
            UnknownFunction(n) => write!(f, "call to unknown function '{n}'"),
            Recursion(n) => write!(f, "recursion through '{n}' is not supported"),
            FrameTooLarge { function, size } => {
                write!(f, "frame of '{function}' is too large ({size} bytes)")
            }
            UnsupportedExternal(a) => write!(f, "no external-calls compiler for '{a}'"),
            StackTooSmall {
                required,
                available,
            } => {
                write!(
                    f,
                    "stack requires {required} bytes but only {available} are available"
                )
            }
            BadEntry(n) => write!(f, "bad entry function '{n}'"),
        }
    }
}

impl std::error::Error for CompileError {}

/// An intra-function label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// Assembly with unresolved control flow, produced per function and
/// resolved by [`crate::link`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmInst {
    /// A fully-formed instruction.
    Real(Instruction),
    /// `bne rs, x0, +8`: skip exactly the following instruction when
    /// `rs != 0`. Paired with [`AsmInst::Jump`] this yields long-range
    /// conditional branches without ±4 KiB range worries.
    SkipIfNonZero {
        /// Register tested against zero.
        rs: Reg,
    },
    /// `beq rs, x0, +8`: skip the following instruction when `rs == 0`.
    SkipIfZero {
        /// Register tested against zero.
        rs: Reg,
    },
    /// `jal x0, label` (resolved at link time).
    Jump {
        /// Branch target.
        label: Label,
    },
    /// `jal ra, <function>` (resolved at link time).
    CallFn {
        /// Callee name.
        name: String,
    },
    /// A label definition; occupies no space.
    LabelDef(Label),
}

/// Frame geometry of one compiled function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameLayout {
    /// Total bytes of `stackalloc` regions.
    pub alloca_bytes: u32,
    /// Number of spill slots.
    pub nspills: u32,
    /// Callee-saved registers this function uses.
    pub saved: Vec<Reg>,
    /// Number of parameters.
    pub nargs: u32,
    /// Number of results.
    pub nrets: u32,
}

impl FrameLayout {
    /// Byte offset of spill slot `k` from the callee `sp`.
    pub fn spill_off(&self, k: u32) -> i32 {
        (self.alloca_bytes + 4 * k) as i32
    }

    /// Byte offset of the `m`-th saved register.
    pub fn saved_off(&self, m: u32) -> i32 {
        (self.alloca_bytes + 4 * self.nspills + 4 * m) as i32
    }

    /// Byte offset of the saved return address.
    pub fn ra_off(&self) -> i32 {
        (self.alloca_bytes + 4 * self.nspills + 4 * self.saved.len() as u32) as i32
    }

    /// Byte offset of incoming argument `i`.
    pub fn arg_off(&self, i: u32) -> i32 {
        (self.size() - 4 * (self.nargs + self.nrets) + 4 * i) as i32
    }

    /// Byte offset of outgoing result `j`.
    pub fn ret_off(&self, j: u32) -> i32 {
        (self.size() - 4 * self.nrets + 4 * j) as i32
    }

    /// Total frame size in bytes.
    pub fn size(&self) -> u32 {
        self.alloca_bytes
            + 4 * (self.nspills + self.saved.len() as u32 + 1 + self.nargs + self.nrets)
    }
}

/// One function's generated code.
#[derive(Clone, Debug)]
pub struct FnCode {
    /// The function's name.
    pub name: String,
    /// Unresolved assembly.
    pub asm: Vec<AsmInst>,
    /// Frame geometry (used by the linker's stack-usage analysis).
    pub frame: FrameLayout,
    /// Names of functions this one calls.
    pub callees: Vec<String>,
}

/// The external-calls compiler parameter (§6.3): how to realize each
/// `Interact` as machine code. The main compiler is proven/tested correct
/// for *any* implementation that meets the obvious contract: it reads the
/// argument locations, writes the result locations, touches only scratch
/// registers, and performs only the I/O its specification allows.
pub trait ExtCallCompiler {
    /// Emits code for one external call.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnsupportedExternal`] for unknown actions.
    fn compile_ext(
        &self,
        action: &str,
        args: &[Loc],
        rets: &[Loc],
        ctx: &mut ExtEmitter<'_>,
    ) -> Result<(), CompileError>;
}

/// The lightbulb instantiation of the external-calls compiler: `MMIOREAD`
/// becomes `lw` and `MMIOWRITE` becomes `sw` (§6.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmioExtCompiler;

impl ExtCallCompiler for MmioExtCompiler {
    fn compile_ext(
        &self,
        action: &str,
        args: &[Loc],
        rets: &[Loc],
        ctx: &mut ExtEmitter<'_>,
    ) -> Result<(), CompileError> {
        match (action, args, rets) {
            ("MMIOREAD", [addr], [ret]) => {
                let a = ctx.read(*addr, T0);
                ctx.emit(Instruction::Lw {
                    rd: T1,
                    rs1: a,
                    offset: 0,
                });
                ctx.write(*ret, T1);
                Ok(())
            }
            ("MMIOWRITE", [addr, value], []) => {
                let a = ctx.read(*addr, T0);
                let v = ctx.read(*value, T1);
                ctx.emit(Instruction::Sw {
                    rs1: a,
                    rs2: v,
                    offset: 0,
                });
                Ok(())
            }
            _ => Err(CompileError::UnsupportedExternal(action.to_string())),
        }
    }
}

/// An external-calls compiler for pure computation programs: rejects every
/// action.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoExtCompiler;

impl ExtCallCompiler for NoExtCompiler {
    fn compile_ext(
        &self,
        action: &str,
        _args: &[Loc],
        _rets: &[Loc],
        _ctx: &mut ExtEmitter<'_>,
    ) -> Result<(), CompileError> {
        Err(CompileError::UnsupportedExternal(action.to_string()))
    }
}

struct FnCodegen {
    asm: Vec<AsmInst>,
    next_label: u32,
    frame: FrameLayout,
    alloca_cursor: u32,
    callees: Vec<String>,
}

/// The limited code-emission interface handed to [`ExtCallCompiler`]
/// implementations.
pub struct ExtEmitter<'a>(&'a mut FnCodegen);

impl ExtEmitter<'_> {
    /// Emits one instruction.
    pub fn emit(&mut self, inst: Instruction) {
        self.0.emit(inst);
    }

    /// Materializes `loc` into a register: returns the register directly
    /// for register locations, or loads the spill slot into `scratch`.
    pub fn read(&mut self, loc: Loc, scratch: Reg) -> Reg {
        self.0.read(loc, scratch)
    }

    /// Stores register `from` into `loc` (move or spill store).
    pub fn write(&mut self, loc: Loc, from: Reg) {
        self.0.write_end(loc, from);
    }
}

impl FnCodegen {
    fn emit(&mut self, inst: Instruction) {
        self.asm.push(AsmInst::Real(inst));
    }

    fn fresh_label(&mut self) -> Label {
        self.next_label += 1;
        Label(self.next_label - 1)
    }

    fn label(&mut self, l: Label) {
        self.asm.push(AsmInst::LabelDef(l));
    }

    /// Loads an immediate into `rd` (the classic `li` expansion).
    fn load_imm(&mut self, rd: Reg, value: u32) {
        let v = value as i32;
        if (-2048..=2047).contains(&v) {
            self.emit(Instruction::Addi {
                rd,
                rs1: Reg::X0,
                imm: v,
            });
        } else {
            let hi = value.wrapping_add(0x800) >> 12;
            let lo = riscv_spec::word::sign_extend(value & 0xFFF, 12) as i32;
            self.emit(Instruction::Lui {
                rd,
                imm20: hi & 0xFFFFF,
            });
            if lo != 0 {
                self.emit(Instruction::Addi {
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
        }
    }

    fn read(&mut self, loc: Loc, scratch: Reg) -> Reg {
        match loc {
            Loc::Reg(r) => r,
            Loc::Spill(k) => {
                let off = self.frame.spill_off(k);
                self.emit(Instruction::Lw {
                    rd: scratch,
                    rs1: Reg::X2,
                    offset: off,
                });
                scratch
            }
        }
    }

    /// Register to compute a result destined for `loc` into.
    fn write_start(&mut self, loc: Loc) -> Reg {
        match loc {
            Loc::Reg(r) => r,
            Loc::Spill(_) => T2,
        }
    }

    /// Commits a computed value to `loc`.
    fn write_end(&mut self, loc: Loc, from: Reg) {
        match loc {
            Loc::Reg(r) => {
                if r != from {
                    self.emit(Instruction::Addi {
                        rd: r,
                        rs1: from,
                        imm: 0,
                    });
                }
            }
            Loc::Spill(k) => {
                let off = self.frame.spill_off(k);
                self.emit(Instruction::Sw {
                    rs1: Reg::X2,
                    rs2: from,
                    offset: off,
                });
            }
        }
    }

    fn binop(&mut self, op: BinOp, rd: Reg, a: Reg, b: Reg) {
        use Instruction as I;
        match op {
            BinOp::Add => self.emit(I::Add { rd, rs1: a, rs2: b }),
            BinOp::Sub => self.emit(I::Sub { rd, rs1: a, rs2: b }),
            BinOp::Mul => self.emit(I::Mul { rd, rs1: a, rs2: b }),
            BinOp::MulHuu => self.emit(I::Mulhu { rd, rs1: a, rs2: b }),
            BinOp::DivU => self.emit(I::Divu { rd, rs1: a, rs2: b }),
            BinOp::RemU => self.emit(I::Remu { rd, rs1: a, rs2: b }),
            BinOp::And => self.emit(I::And { rd, rs1: a, rs2: b }),
            BinOp::Or => self.emit(I::Or { rd, rs1: a, rs2: b }),
            BinOp::Xor => self.emit(I::Xor { rd, rs1: a, rs2: b }),
            BinOp::Sru => self.emit(I::Srl { rd, rs1: a, rs2: b }),
            BinOp::Slu => self.emit(I::Sll { rd, rs1: a, rs2: b }),
            BinOp::Srs => self.emit(I::Sra { rd, rs1: a, rs2: b }),
            BinOp::Lts => self.emit(I::Slt { rd, rs1: a, rs2: b }),
            BinOp::Ltu => self.emit(I::Sltu { rd, rs1: a, rs2: b }),
            BinOp::Eq => {
                self.emit(I::Sub { rd, rs1: a, rs2: b });
                self.emit(I::Sltiu {
                    rd,
                    rs1: rd,
                    imm: 1,
                });
            }
        }
    }

    fn stmt(&mut self, s: &FStmt<Loc>, ext: &dyn ExtCallCompiler) -> Result<(), CompileError> {
        use Instruction as I;
        match s {
            FStmt::Skip => {}
            FStmt::Lit { dest, value } => {
                let d = self.write_start(*dest);
                self.load_imm(d, *value);
                self.write_end(*dest, d);
            }
            FStmt::Copy { dest, src } => {
                let s = self.read(*src, T0);
                self.write_end(*dest, s);
            }
            FStmt::Op { dest, op, a, b } => {
                let ra = self.read(*a, T0);
                let rb = self.read(*b, T1);
                let d = self.write_start(*dest);
                self.binop(*op, d, ra, rb);
                self.write_end(*dest, d);
            }
            FStmt::Load { dest, size, addr } => {
                let a = self.read(*addr, T0);
                let d = self.write_start(*dest);
                match size {
                    Size::One => self.emit(I::Lbu {
                        rd: d,
                        rs1: a,
                        offset: 0,
                    }),
                    Size::Two => self.emit(I::Lhu {
                        rd: d,
                        rs1: a,
                        offset: 0,
                    }),
                    Size::Four => self.emit(I::Lw {
                        rd: d,
                        rs1: a,
                        offset: 0,
                    }),
                }
                self.write_end(*dest, d);
            }
            FStmt::Store { size, addr, value } => {
                let a = self.read(*addr, T0);
                let v = self.read(*value, T1);
                match size {
                    Size::One => self.emit(I::Sb {
                        rs1: a,
                        rs2: v,
                        offset: 0,
                    }),
                    Size::Two => self.emit(I::Sh {
                        rs1: a,
                        rs2: v,
                        offset: 0,
                    }),
                    Size::Four => self.emit(I::Sw {
                        rs1: a,
                        rs2: v,
                        offset: 0,
                    }),
                }
            }
            FStmt::If { cond, then_, else_ } => {
                // SkipIfNonZero skips the jump when the condition holds, so
                // the then-branch is the fallthrough and the jump (taken
                // when the condition is zero) targets the else code. Using
                // jal for the actual transfer keeps branch ranges unlimited.
                let c = self.read(*cond, T0);
                let l_else = self.fresh_label();
                let l_end = self.fresh_label();
                self.asm.push(AsmInst::SkipIfNonZero { rs: c });
                self.asm.push(AsmInst::Jump { label: l_else });
                self.stmt(then_, ext)?;
                self.asm.push(AsmInst::Jump { label: l_end });
                self.label(l_else);
                self.stmt(else_, ext)?;
                self.label(l_end);
            }
            FStmt::Loop {
                cond_stmts,
                cond,
                body,
            } => {
                let l_head = self.fresh_label();
                let l_end = self.fresh_label();
                self.label(l_head);
                self.stmt(cond_stmts, ext)?;
                let c = self.read(*cond, T0);
                self.asm.push(AsmInst::SkipIfNonZero { rs: c });
                self.asm.push(AsmInst::Jump { label: l_end });
                self.stmt(body, ext)?;
                self.asm.push(AsmInst::Jump { label: l_head });
                self.label(l_end);
            }
            FStmt::Seq(ss) => {
                for s in ss {
                    self.stmt(s, ext)?;
                }
            }
            FStmt::Call { rets, f, args } => {
                let n_args = args.len() as i32;
                let n_rets = rets.len() as i32;
                for (i, a) in args.iter().enumerate() {
                    let r = self.read(*a, T0);
                    self.emit(I::Sw {
                        rs1: Reg::X2,
                        rs2: r,
                        offset: -4 * (n_args + n_rets) + 4 * i as i32,
                    });
                }
                self.callees.push(f.clone());
                self.asm.push(AsmInst::CallFn { name: f.clone() });
                for (j, r) in rets.iter().enumerate() {
                    self.emit(I::Lw {
                        rd: T0,
                        rs1: Reg::X2,
                        offset: -4 * n_rets + 4 * j as i32,
                    });
                    self.write_end(*r, T0);
                }
            }
            FStmt::Interact { rets, action, args } => {
                let mut ctx = ExtEmitter(self);
                ext.compile_ext(action, args, rets, &mut ctx)?;
            }
            FStmt::Stackalloc { dest, nbytes, body } => {
                let off = self.alloca_cursor as i32;
                self.alloca_cursor += *nbytes;
                let d = self.write_start(*dest);
                self.emit(I::Addi {
                    rd: d,
                    rs1: Reg::X2,
                    imm: off,
                });
                self.write_end(*dest, d);
                self.stmt(body, ext)?;
            }
        }
        Ok(())
    }
}

/// Compiles one register-allocated function to unresolved assembly.
///
/// # Errors
///
/// Propagates external-call compilation failures and reports frames too
/// large for 12-bit stack addressing.
pub fn compile_function(
    f: &FlatFunction<Loc>,
    used_regs: &[Reg],
    nspills: u32,
    ext: &dyn ExtCallCompiler,
) -> Result<FnCode, CompileError> {
    let frame = FrameLayout {
        alloca_bytes: f.body.stackalloc_bytes(),
        nspills,
        saved: used_regs.to_vec(),
        nargs: f.params.len() as u32,
        nrets: f.rets.len() as u32,
    };
    if frame.size() > 2040 {
        return Err(CompileError::FrameTooLarge {
            function: f.name.clone(),
            size: frame.size(),
        });
    }
    let mut cg = FnCodegen {
        asm: Vec::new(),
        next_label: 0,
        frame: frame.clone(),
        alloca_cursor: 0,
        callees: Vec::new(),
    };
    use Instruction as I;

    // Prologue.
    cg.emit(I::Addi {
        rd: Reg::X2,
        rs1: Reg::X2,
        imm: -(frame.size() as i32),
    });
    cg.emit(I::Sw {
        rs1: Reg::X2,
        rs2: Reg::X1,
        offset: frame.ra_off(),
    });
    for (m, r) in frame.saved.iter().enumerate() {
        cg.emit(I::Sw {
            rs1: Reg::X2,
            rs2: *r,
            offset: frame.saved_off(m as u32),
        });
    }
    for (i, p) in f.params.iter().enumerate() {
        cg.emit(I::Lw {
            rd: T0,
            rs1: Reg::X2,
            offset: frame.arg_off(i as u32),
        });
        cg.write_end(*p, T0);
    }

    cg.stmt(&f.body, ext)?;

    // Epilogue.
    for (j, r) in f.rets.iter().enumerate() {
        let reg = cg.read(*r, T0);
        cg.emit(I::Sw {
            rs1: Reg::X2,
            rs2: reg,
            offset: frame.ret_off(j as u32),
        });
    }
    for (m, r) in frame.saved.iter().enumerate() {
        cg.emit(I::Lw {
            rd: *r,
            rs1: Reg::X2,
            offset: frame.saved_off(m as u32),
        });
    }
    cg.emit(I::Lw {
        rd: Reg::X1,
        rs1: Reg::X2,
        offset: frame.ra_off(),
    });
    cg.emit(I::Addi {
        rd: Reg::X2,
        rs1: Reg::X2,
        imm: frame.size() as i32,
    });
    cg.emit(I::Jalr {
        rd: Reg::X0,
        rs1: Reg::X1,
        offset: 0,
    });

    let mut callees = cg.callees.clone();
    callees.sort();
    callees.dedup();
    Ok(FnCode {
        name: f.name.clone(),
        asm: cg.asm,
        frame,
        callees,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_offsets_are_consistent() {
        let frame = FrameLayout {
            alloca_bytes: 8,
            nspills: 2,
            saved: vec![Reg::new(8), Reg::new(9)],
            nargs: 2,
            nrets: 1,
        };
        // size = 8 + 4*(2 + 2 + 1 + 2 + 1) = 8 + 32 = 40
        assert_eq!(frame.size(), 40);
        assert_eq!(frame.spill_off(0), 8);
        assert_eq!(frame.spill_off(1), 12);
        assert_eq!(frame.saved_off(0), 16);
        assert_eq!(frame.ra_off(), 24);
        assert_eq!(frame.arg_off(0), 40 - 12);
        assert_eq!(frame.arg_off(1), 40 - 8);
        assert_eq!(frame.ret_off(0), 40 - 4);
        // Caller-side address of arg 0 relative to caller sp must agree:
        // caller_sp - 4*(nargs+nrets) + 0 = callee_sp + F - 12. ✓
    }

    #[test]
    fn mmio_ext_compiler_rejects_unknown_actions() {
        let mut cg = FnCodegen {
            asm: Vec::new(),
            next_label: 0,
            frame: FrameLayout {
                alloca_bytes: 0,
                nspills: 0,
                saved: vec![],
                nargs: 0,
                nrets: 0,
            },
            alloca_cursor: 0,
            callees: Vec::new(),
        };
        let mut ctx = ExtEmitter(&mut cg);
        let err = MmioExtCompiler.compile_ext("FROBNICATE", &[], &[], &mut ctx);
        assert_eq!(
            err,
            Err(CompileError::UnsupportedExternal("FROBNICATE".into()))
        );
    }

    #[test]
    fn mmio_read_emits_lw() {
        let mut cg = FnCodegen {
            asm: Vec::new(),
            next_label: 0,
            frame: FrameLayout {
                alloca_bytes: 0,
                nspills: 0,
                saved: vec![],
                nargs: 0,
                nrets: 0,
            },
            alloca_cursor: 0,
            callees: Vec::new(),
        };
        let mut ctx = ExtEmitter(&mut cg);
        MmioExtCompiler
            .compile_ext(
                "MMIOREAD",
                &[Loc::Reg(Reg::new(10))],
                &[Loc::Reg(Reg::new(11))],
                &mut ctx,
            )
            .unwrap();
        assert!(cg
            .asm
            .iter()
            .any(|i| matches!(i, AsmInst::Real(Instruction::Lw { .. }))));
    }
}

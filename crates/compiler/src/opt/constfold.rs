//! Constant folding and algebraic simplification.

use bedrock2::ast::{BinOp, Expr, Stmt};

/// Folds constants in an expression bottom-up.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Literal(_) | Expr::Var(_) => e.clone(),
        Expr::Load(s, a) => Expr::Load(*s, Box::new(fold_expr(a))),
        Expr::Op(op, a, b) => {
            let a = fold_expr(a);
            let b = fold_expr(b);
            if let (Expr::Literal(x), Expr::Literal(y)) = (&a, &b) {
                return Expr::Literal(op.eval(*x, *y));
            }
            // Algebraic identities on pure subterms (a load must not be
            // duplicated or dropped unless it is the identity's survivor).
            match (op, &a, &b) {
                (BinOp::Add, x, Expr::Literal(0)) => return x.clone(),
                (BinOp::Add, Expr::Literal(0), x) => return x.clone(),
                (BinOp::Sub, x, Expr::Literal(0)) => return x.clone(),
                (BinOp::Mul, x, Expr::Literal(1)) => return x.clone(),
                (BinOp::Mul, Expr::Literal(1), x) => return x.clone(),
                (BinOp::Mul, _, Expr::Literal(0)) if a.is_pure() => {
                    return Expr::Literal(0);
                }
                (BinOp::Mul, Expr::Literal(0), _) if b.is_pure() => {
                    return Expr::Literal(0);
                }
                (BinOp::Or, x, Expr::Literal(0)) => return x.clone(),
                (BinOp::Or, Expr::Literal(0), x) => return x.clone(),
                (BinOp::Xor, x, Expr::Literal(0)) => return x.clone(),
                (BinOp::Xor, Expr::Literal(0), x) => return x.clone(),
                (BinOp::And, _, Expr::Literal(0)) if a.is_pure() => {
                    return Expr::Literal(0);
                }
                (BinOp::And, Expr::Literal(0), _) if b.is_pure() => {
                    return Expr::Literal(0);
                }
                (BinOp::Sru | BinOp::Slu | BinOp::Srs, x, Expr::Literal(0)) => {
                    return x.clone();
                }
                (BinOp::Sub, x, y) if x == y && x.is_pure() => {
                    return Expr::Literal(0);
                }
                (BinOp::Xor, x, y) if x == y && x.is_pure() => {
                    return Expr::Literal(0);
                }
                _ => {}
            }
            Expr::Op(*op, Box::new(a), Box::new(b))
        }
    }
}

/// Folds constants in a statement; statically-decided `if`s select their
/// live branch, and `while (0)` disappears.
pub fn fold_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Skip => Stmt::Skip,
        Stmt::Set(x, e) => Stmt::Set(x.clone(), fold_expr(e)),
        Stmt::Store(sz, a, v) => Stmt::Store(*sz, fold_expr(a), fold_expr(v)),
        Stmt::If(c, t, e) => {
            let c = fold_expr(c);
            match c {
                Expr::Literal(0) => fold_stmt(e),
                Expr::Literal(_) => fold_stmt(t),
                c => Stmt::If(c, Box::new(fold_stmt(t)), Box::new(fold_stmt(e))),
            }
        }
        Stmt::While(c, b) => {
            let c = fold_expr(c);
            match c {
                Expr::Literal(0) => Stmt::Skip,
                c => Stmt::While(c, Box::new(fold_stmt(b))),
            }
        }
        Stmt::Block(ss) => {
            let folded: Vec<Stmt> = ss
                .iter()
                .map(fold_stmt)
                .filter(|s| {
                    !matches!(s, Stmt::Skip) && !matches!(s, Stmt::Block(v) if v.is_empty())
                })
                .collect();
            match folded.len() {
                0 => Stmt::Skip,
                1 => folded.into_iter().next().expect("length checked"),
                _ => Stmt::Block(folded),
            }
        }
        Stmt::Call(r, f, args) => {
            Stmt::Call(r.clone(), f.clone(), args.iter().map(fold_expr).collect())
        }
        Stmt::Interact(r, a, args) => {
            Stmt::Interact(r.clone(), a.clone(), args.iter().map(fold_expr).collect())
        }
        Stmt::Stackalloc(x, n, b) => Stmt::Stackalloc(x.clone(), *n, Box::new(fold_stmt(b))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::dsl::*;

    #[test]
    fn literal_arithmetic_folds() {
        assert_eq!(fold_expr(&add(lit(2), lit(3))), lit(5));
        assert_eq!(fold_expr(&divu(lit(7), lit(0))), lit(u32::MAX));
        assert_eq!(fold_expr(&mul(add(lit(1), lit(1)), lit(4))), lit(8));
    }

    #[test]
    fn identities_simplify() {
        assert_eq!(fold_expr(&add(var("x"), lit(0))), var("x"));
        assert_eq!(fold_expr(&mul(var("x"), lit(1))), var("x"));
        assert_eq!(fold_expr(&mul(var("x"), lit(0))), lit(0));
        assert_eq!(fold_expr(&sub(var("x"), var("x"))), lit(0));
        assert_eq!(fold_expr(&xor(var("x"), var("x"))), lit(0));
    }

    #[test]
    fn loads_are_never_dropped_by_identities() {
        // load(p) * 0 must keep the load (its UB/side-conditions matter to
        // purity-sensitive callers), so no simplification fires.
        let e = mul(load4(var("p")), lit(0));
        assert_eq!(fold_expr(&e), e);
    }

    #[test]
    fn static_branches_select() {
        let s = if_(lit(1), set("x", lit(1)), set("x", lit(2)));
        assert_eq!(fold_stmt(&s), set("x", lit(1)));
        let s = if_(lit(0), set("x", lit(1)), set("x", lit(2)));
        assert_eq!(fold_stmt(&s), set("x", lit(2)));
        let s = while_(lit(0), set("x", lit(1)));
        assert_eq!(fold_stmt(&s), bedrock2::ast::Stmt::Skip);
    }

    #[test]
    fn blocks_collapse() {
        use bedrock2::ast::Stmt;
        let s = block([Stmt::Skip, set("x", lit(1)), Stmt::Skip]);
        assert_eq!(fold_stmt(&s), set("x", lit(1)));
        let s = block([Stmt::Skip, Stmt::Skip]);
        assert_eq!(fold_stmt(&s), Stmt::Skip);
    }
}

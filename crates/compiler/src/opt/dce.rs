//! Dead-store elimination by backward liveness over named variables.
//!
//! A `Set` whose destination is not live afterwards and whose right-hand
//! side is pure (contains no loads, whose out-of-bounds behavior must be
//! preserved conservatively) is removed.

use bedrock2::ast::{Expr, Stmt};
use std::collections::HashSet;

fn expr_uses(e: &Expr, live: &mut HashSet<String>) {
    match e {
        Expr::Literal(_) => {}
        Expr::Var(x) => {
            live.insert(x.clone());
        }
        Expr::Load(_, a) => expr_uses(a, live),
        Expr::Op(_, a, b) => {
            expr_uses(a, live);
            expr_uses(b, live);
        }
    }
}

/// Rewrites `s` removing dead pure stores; `live` is the live-variable set
/// *after* `s` on entry and is updated to the set *before* `s` on return.
fn dce(s: &Stmt, live: &mut HashSet<String>) -> Stmt {
    match s {
        Stmt::Skip => Stmt::Skip,
        Stmt::Set(x, e) => {
            if !live.contains(x) && e.is_pure() {
                return Stmt::Skip;
            }
            live.remove(x);
            expr_uses(e, live);
            s.clone()
        }
        Stmt::Store(_, a, v) => {
            expr_uses(a, live);
            expr_uses(v, live);
            s.clone()
        }
        Stmt::If(c, t, e) => {
            let mut live_t = live.clone();
            let mut live_e = live.clone();
            let t = dce(t, &mut live_t);
            let e = dce(e, &mut live_e);
            *live = &live_t | &live_e;
            expr_uses(c, live);
            Stmt::If(c.clone(), Box::new(t), Box::new(e))
        }
        Stmt::While(c, b) => {
            // Fixpoint for the head-live set, then rewrite the body against
            // it (conservative: the head set is the body's live-out).
            let exit = live.clone();
            let mut head = exit.clone();
            expr_uses(c, &mut head);
            loop {
                let mut probe = head.clone();
                let _ = dce(b, &mut probe);
                let mut grown = &head | &probe;
                expr_uses(c, &mut grown);
                if grown == head {
                    break;
                }
                head = grown;
            }
            let mut body_live = head.clone();
            let b = dce(b, &mut body_live);
            *live = head;
            Stmt::While(c.clone(), Box::new(b))
        }
        Stmt::Block(ss) => {
            let mut out: Vec<Stmt> = ss.iter().rev().map(|s| dce(s, live)).collect();
            out.reverse();
            out.retain(|s| !matches!(s, Stmt::Skip));
            match out.len() {
                0 => Stmt::Skip,
                1 => out.into_iter().next().expect("length checked"),
                _ => Stmt::Block(out),
            }
        }
        Stmt::Call(rets, _, args) | Stmt::Interact(rets, _, args) => {
            // Calls may have effects (I/O, memory); always kept.
            for r in rets {
                live.remove(r);
            }
            for a in args {
                expr_uses(a, live);
            }
            s.clone()
        }
        Stmt::Stackalloc(x, n, b) => {
            let b2 = dce(b, live);
            live.remove(x);
            Stmt::Stackalloc(x.clone(), *n, Box::new(b2))
        }
    }
}

/// Removes dead pure assignments from a function body with returns `rets`.
pub fn eliminate_dead(body: &Stmt, rets: &[String]) -> Stmt {
    let mut live: HashSet<String> = rets.iter().cloned().collect();
    dce(body, &mut live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::dsl::*;

    fn rets(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dead_pure_set_is_removed() {
        let s = block([set("dead", mul(var("x"), lit(3))), set("r", var("x"))]);
        assert_eq!(eliminate_dead(&s, &rets(&["r"])), set("r", var("x")));
    }

    #[test]
    fn loads_are_kept_even_if_dead() {
        let s = block([set("dead", load4(var("p"))), set("r", var("x"))]);
        let out = eliminate_dead(&s, &rets(&["r"]));
        assert_eq!(out, s, "a dead load must be preserved (it can fault)");
    }

    #[test]
    fn overwritten_values_are_dead() {
        let s = block([set("r", lit(1)), set("r", lit(2))]);
        assert_eq!(eliminate_dead(&s, &rets(&["r"])), set("r", lit(2)));
    }

    #[test]
    fn loop_carried_uses_keep_values_alive() {
        let s = block([
            set("acc", lit(0)),
            while_(
                var("n"),
                block([
                    set("acc", add(var("acc"), var("n"))),
                    set("n", sub(var("n"), lit(1))),
                ]),
            ),
        ]);
        let out = eliminate_dead(&s, &rets(&["acc"]));
        assert_eq!(out, s, "loop-carried accumulator must survive");
    }

    #[test]
    fn values_dead_after_loop_but_used_inside_survive() {
        let s = block([
            set("k", lit(3)),
            while_(var("n"), set("n", sub(var("n"), var("k")))),
        ]);
        let out = eliminate_dead(&s, &rets(&["n"]));
        assert_eq!(out, s);
    }

    #[test]
    fn calls_are_never_removed() {
        let s = block([interact(&["v"], "MMIOREAD", [lit(0x100)]), set("r", lit(1))]);
        let out = eliminate_dead(&s, &rets(&["r"]));
        match out {
            bedrock2::ast::Stmt::Block(ref ss) => assert_eq!(ss.len(), 2),
            other => panic!("interact was removed: {other:?}"),
        }
    }

    #[test]
    fn branch_liveness_unions() {
        // x is used only in one branch; its definition must survive.
        let s = block([
            set("x", lit(5)),
            if_(var("c"), set("r", var("x")), set("r", lit(0))),
        ]);
        let out = eliminate_dead(&s, &rets(&["r"]));
        assert_eq!(out, s);
    }
}

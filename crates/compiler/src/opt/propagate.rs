//! Constant and copy propagation.
//!
//! Tracks, through straight-line code, which variables currently hold a
//! known constant or are aliases of another variable, substituting those
//! facts into later expressions. Control-flow joins intersect the known
//! facts; loops kill every variable their body may assign.

use bedrock2::ast::{Expr, Stmt};
use std::collections::HashMap;

/// What we know about a variable at a program point.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Fact {
    Const(u32),
    Alias(String),
}

type Env = HashMap<String, Fact>;

/// Substitutes known facts into an expression (without folding; the
/// constant-folding pass runs afterwards).
fn subst(e: &Expr, env: &Env) -> Expr {
    match e {
        Expr::Literal(_) => e.clone(),
        Expr::Var(x) => match env.get(x) {
            Some(Fact::Const(c)) => Expr::Literal(*c),
            Some(Fact::Alias(y)) => Expr::Var(y.clone()),
            None => e.clone(),
        },
        Expr::Load(s, a) => Expr::Load(*s, Box::new(subst(a, env))),
        Expr::Op(o, a, b) => Expr::Op(*o, Box::new(subst(a, env)), Box::new(subst(b, env))),
    }
}

/// Removes `x` from the environment, including any aliases *of* `x`.
fn kill(env: &mut Env, x: &str) {
    env.remove(x);
    env.retain(|_, f| !matches!(f, Fact::Alias(y) if y == x));
}

/// Variables a statement may assign.
fn assigned(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Set(x, _) => out.push(x.clone()),
        Stmt::If(_, t, e) => {
            assigned(t, out);
            assigned(e, out);
        }
        Stmt::While(_, b) => assigned(b, out),
        Stmt::Block(ss) => ss.iter().for_each(|s| assigned(s, out)),
        Stmt::Call(rets, _, _) | Stmt::Interact(rets, _, _) => out.extend(rets.iter().cloned()),
        Stmt::Stackalloc(x, _, b) => {
            out.push(x.clone());
            assigned(b, out);
        }
        _ => {}
    }
}

fn intersect(a: &Env, b: &Env) -> Env {
    a.iter()
        .filter(|(k, v)| b.get(*k) == Some(*v))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn prop(s: &Stmt, env: &mut Env) -> Stmt {
    match s {
        Stmt::Skip => Stmt::Skip,
        Stmt::Set(x, e) => {
            let e = subst(e, env);
            kill(env, x);
            match &e {
                Expr::Literal(c) => {
                    env.insert(x.clone(), Fact::Const(*c));
                }
                Expr::Var(y) if y != x => {
                    env.insert(x.clone(), Fact::Alias(y.clone()));
                }
                _ => {}
            }
            Stmt::Set(x.clone(), e)
        }
        Stmt::Store(sz, a, v) => Stmt::Store(*sz, subst(a, env), subst(v, env)),
        Stmt::If(c, t, e) => {
            let c = subst(c, env);
            let mut env_t = env.clone();
            let mut env_e = env.clone();
            let t = prop(t, &mut env_t);
            let e = prop(e, &mut env_e);
            *env = intersect(&env_t, &env_e);
            Stmt::If(c, Box::new(t), Box::new(e))
        }
        Stmt::While(c, b) => {
            // Facts about variables the body may assign do not survive the
            // back edge; kill them before touching the condition or body.
            let mut killed = Vec::new();
            assigned(b, &mut killed);
            for x in &killed {
                kill(env, x);
            }
            let c = subst(c, env);
            let mut env_b = env.clone();
            let b = prop(b, &mut env_b);
            Stmt::While(c, Box::new(b))
        }
        Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| prop(s, env)).collect()),
        Stmt::Call(rets, f, args) => {
            let args = args.iter().map(|a| subst(a, env)).collect();
            for r in rets {
                kill(env, r);
            }
            Stmt::Call(rets.clone(), f.clone(), args)
        }
        Stmt::Interact(rets, action, args) => {
            let args = args.iter().map(|a| subst(a, env)).collect();
            for r in rets {
                kill(env, r);
            }
            Stmt::Interact(rets.clone(), action.clone(), args)
        }
        Stmt::Stackalloc(x, n, b) => {
            kill(env, x);
            let b = prop(b, env);
            // The buffer address is only valid inside the body's scope;
            // conservatively forget everything the body established about x.
            kill(env, x);
            Stmt::Stackalloc(x.clone(), *n, Box::new(b))
        }
    }
}

/// Runs constant/copy propagation over a statement.
pub fn propagate_stmt(s: &Stmt) -> Stmt {
    let mut env = Env::new();
    prop(s, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::dsl::*;

    #[test]
    fn constants_flow_forward() {
        let s = block([set("a", lit(5)), set("b", add(var("a"), lit(1)))]);
        let out = propagate_stmt(&s);
        assert_eq!(
            out,
            block([set("a", lit(5)), set("b", add(lit(5), lit(1)))])
        );
    }

    #[test]
    fn copies_flow_forward() {
        let s = block([set("a", var("x")), set("b", add(var("a"), var("a")))]);
        let out = propagate_stmt(&s);
        assert_eq!(
            out,
            block([set("a", var("x")), set("b", add(var("x"), var("x")))])
        );
    }

    #[test]
    fn reassignment_kills_facts_and_aliases() {
        // a = x; x = 1; b = a   — a must NOT become x (x changed).
        let s = block([set("a", var("x")), set("x", lit(1)), set("b", var("a"))]);
        let out = propagate_stmt(&s);
        assert_eq!(
            out,
            block([set("a", var("x")), set("x", lit(1)), set("b", var("a"))])
        );
    }

    #[test]
    fn if_joins_intersect() {
        // a known 1 on both branches survives; b differs and is dropped.
        let s = block([
            if_(
                var("c"),
                block([set("a", lit(1)), set("b", lit(2))]),
                block([set("a", lit(1)), set("b", lit(3))]),
            ),
            set("r", add(var("a"), var("b"))),
        ]);
        let out = propagate_stmt(&s);
        match out {
            bedrock2::ast::Stmt::Block(ref ss) => {
                assert_eq!(ss[1], set("r", add(lit(1), var("b"))));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn loop_bodies_kill_their_assignments() {
        // n is assigned in the loop, so its entry constant must not be
        // substituted into the condition or body.
        let s = block([
            set("n", lit(3)),
            while_(var("n"), set("n", sub(var("n"), lit(1)))),
            set("r", var("n")),
        ]);
        let out = propagate_stmt(&s);
        match out {
            bedrock2::ast::Stmt::Block(ref ss) => {
                assert_eq!(ss[1], while_(var("n"), set("n", sub(var("n"), lit(1)))));
                assert_eq!(ss[2], set("r", var("n")));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn loop_invariant_constants_do_propagate() {
        let s = block([
            set("k", lit(7)),
            while_(var("n"), set("n", sub(var("n"), var("k")))),
        ]);
        let out = propagate_stmt(&s);
        match out {
            bedrock2::ast::Stmt::Block(ref ss) => {
                assert_eq!(ss[1], while_(var("n"), set("n", sub(var("n"), lit(7)))));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn external_call_results_are_unknown() {
        let s = block([
            set("v", lit(1)),
            interact(&["v"], "MMIOREAD", [lit(0x100)]),
            set("r", var("v")),
        ]);
        let out = propagate_stmt(&s);
        match out {
            bedrock2::ast::Stmt::Block(ref ss) => {
                assert_eq!(ss[2], set("r", var("v")));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }
}

//! The optimizing pipeline: the "gcc -O3-like" baseline of the paper's
//! §7.2.1 performance comparison.
//!
//! The paper's verified compiler "does not do constant propagation,
//! function inlining, or exploit caller-saved registers", and measures a
//! 2.1× response-time cost relative to gcc -O3 for the lightbulb workload.
//! To regenerate the *shape* of that comparison, this module implements the
//! optimizations the comparison names, as source-to-source passes over
//! Bedrock2:
//!
//! * [`constfold`] — constant folding and algebraic simplification;
//! * [`propagate`] — constant and copy propagation through straight-line
//!   code with sound joins at control flow;
//! * [`dce`] — dead-store elimination by backward liveness;
//! * [`inline`] — inlining of small leaf functions (the optimization gcc
//!   applies to the SPI driver's innermost call, per the paper).
//!
//! Every pass preserves the observable semantics of runs without undefined
//! behavior; this is checked differentially on random programs in
//! `tests/opt_differential.rs`.

pub mod constfold;
pub mod dce;
pub mod inline;
pub mod propagate;

use bedrock2::ast::Program;

/// Runs the full pipeline to a fixpoint (bounded at a few rounds; the
/// passes are monotone in program size after inlining stabilizes).
pub fn optimize_program(p: &Program) -> Program {
    let mut prog = inline::inline_program(p);
    for _ in 0..3 {
        let mut next = prog.clone();
        for f in next.functions.values_mut() {
            f.body = constfold::fold_stmt(&f.body);
            f.body = propagate::propagate_stmt(&f.body);
            f.body = constfold::fold_stmt(&f.body);
            f.body = dce::eliminate_dead(&f.body, &f.rets);
        }
        if next == prog {
            break;
        }
        prog = next;
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::ast::{Expr, Function, Stmt};
    use bedrock2::dsl::*;
    use bedrock2::semantics::{Interp, NoExt};
    use riscv_spec::Memory;

    #[test]
    fn pipeline_preserves_behavior_on_a_representative_function() {
        let f = Function::new(
            "main",
            &["n"],
            &["r"],
            block([
                set("a", add(lit(2), lit(3))),
                set("b", var("a")),
                set("dead", mul(var("n"), lit(77))),
                set("r", lit(0)),
                while_(
                    var("n"),
                    block([
                        set("r", add(var("r"), add(var("b"), var("n")))),
                        set("n", sub(var("n"), lit(1))),
                    ]),
                ),
            ]),
        );
        let p = Program::from_functions([f]);
        let q = optimize_program(&p);

        let mut pi = Interp::new(&p, Memory::with_size(256), NoExt);
        let mut qi = Interp::new(&q, Memory::with_size(256), NoExt);
        assert_eq!(
            pi.call("main", &[6]).unwrap(),
            qi.call("main", &[6]).unwrap()
        );

        // And the dead multiply must actually be gone.
        let body = &q.functions["main"].body;
        fn contains_mul(s: &Stmt) -> bool {
            match s {
                Stmt::Set(_, e) => expr_has_mul(e),
                Stmt::Block(ss) => ss.iter().any(contains_mul),
                Stmt::While(_, b) => contains_mul(b),
                Stmt::If(_, t, e) => contains_mul(t) || contains_mul(e),
                _ => false,
            }
        }
        fn expr_has_mul(e: &Expr) -> bool {
            match e {
                Expr::Op(bedrock2::ast::BinOp::Mul, ..) => true,
                Expr::Op(_, a, b) => expr_has_mul(a) || expr_has_mul(b),
                Expr::Load(_, a) => expr_has_mul(a),
                _ => false,
            }
        }
        assert!(!contains_mul(body), "dead multiply survived: {body:?}");
    }

    #[test]
    fn pipeline_shrinks_constant_programs_to_constants() {
        let f = Function::new(
            "main",
            &[],
            &["r"],
            block([
                set("a", lit(10)),
                set("b", add(var("a"), lit(5))),
                set("r", mul(var("b"), lit(2))),
            ]),
        );
        let p = Program::from_functions([f]);
        let q = optimize_program(&p);
        let mut qi = Interp::new(&q, Memory::with_size(64), NoExt);
        assert_eq!(qi.call("main", &[]).unwrap(), vec![30]);
        // After propagation + folding + DCE, the body should be tiny.
        assert!(
            q.functions["main"].body.size() <= 3,
            "{:?}",
            q.functions["main"].body
        );
    }
}

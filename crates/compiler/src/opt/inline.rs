//! Inlining of small leaf functions.
//!
//! The paper attributes part of gcc's 2.1× advantage to inlining the SPI
//! driver call in the innermost polling loop (§7.2.1); this pass performs
//! exactly that kind of inlining: a call to a function that is small and
//! makes no further `Call`s is replaced by its body, with the callee's
//! locals renamed into a fresh namespace.

use bedrock2::ast::{Expr, Function, Program, Stmt};

/// Callee bodies up to this many AST nodes are inlined.
pub const INLINE_THRESHOLD: usize = 40;

fn rename_expr(e: &Expr, prefix: &str) -> Expr {
    match e {
        Expr::Literal(_) => e.clone(),
        Expr::Var(x) => Expr::Var(format!("{prefix}{x}")),
        Expr::Load(s, a) => Expr::Load(*s, Box::new(rename_expr(a, prefix))),
        Expr::Op(o, a, b) => Expr::Op(
            *o,
            Box::new(rename_expr(a, prefix)),
            Box::new(rename_expr(b, prefix)),
        ),
    }
}

fn rename_stmt(s: &Stmt, prefix: &str) -> Stmt {
    match s {
        Stmt::Skip => Stmt::Skip,
        Stmt::Set(x, e) => Stmt::Set(format!("{prefix}{x}"), rename_expr(e, prefix)),
        Stmt::Store(sz, a, v) => Stmt::Store(*sz, rename_expr(a, prefix), rename_expr(v, prefix)),
        Stmt::If(c, t, e) => Stmt::If(
            rename_expr(c, prefix),
            Box::new(rename_stmt(t, prefix)),
            Box::new(rename_stmt(e, prefix)),
        ),
        Stmt::While(c, b) => Stmt::While(rename_expr(c, prefix), Box::new(rename_stmt(b, prefix))),
        Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| rename_stmt(s, prefix)).collect()),
        Stmt::Call(rets, f, args) => Stmt::Call(
            rets.iter().map(|r| format!("{prefix}{r}")).collect(),
            f.clone(),
            args.iter().map(|a| rename_expr(a, prefix)).collect(),
        ),
        Stmt::Interact(rets, action, args) => Stmt::Interact(
            rets.iter().map(|r| format!("{prefix}{r}")).collect(),
            action.clone(),
            args.iter().map(|a| rename_expr(a, prefix)).collect(),
        ),
        Stmt::Stackalloc(x, n, b) => {
            Stmt::Stackalloc(format!("{prefix}{x}"), *n, Box::new(rename_stmt(b, prefix)))
        }
    }
}

fn is_leaf(f: &Function) -> bool {
    f.body.callees().is_empty()
}

fn inline_stmt(s: &Stmt, prog: &Program, counter: &mut u32) -> Stmt {
    match s {
        Stmt::Call(rets, fname, args) => {
            let Some(callee) = prog.function(fname) else {
                return s.clone();
            };
            if !is_leaf(callee) || callee.body.size() > INLINE_THRESHOLD {
                return s.clone();
            }
            let prefix = format!("${}${counter}$", callee.name);
            *counter += 1;
            let mut stmts = Vec::new();
            for (p, a) in callee.params.iter().zip(args) {
                stmts.push(Stmt::Set(format!("{prefix}{p}"), a.clone()));
            }
            stmts.push(rename_stmt(&callee.body, &prefix));
            for (r, cr) in rets.iter().zip(&callee.rets) {
                stmts.push(Stmt::Set(r.clone(), Expr::Var(format!("{prefix}{cr}"))));
            }
            Stmt::Block(stmts)
        }
        Stmt::If(c, t, e) => Stmt::If(
            c.clone(),
            Box::new(inline_stmt(t, prog, counter)),
            Box::new(inline_stmt(e, prog, counter)),
        ),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(inline_stmt(b, prog, counter))),
        Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| inline_stmt(s, prog, counter)).collect()),
        Stmt::Stackalloc(x, n, b) => {
            Stmt::Stackalloc(x.clone(), *n, Box::new(inline_stmt(b, prog, counter)))
        }
        _ => s.clone(),
    }
}

/// Inlines small leaf callees throughout the program. Runs two rounds so
/// that a function that became a leaf by inlining can itself be inlined.
pub fn inline_program(p: &Program) -> Program {
    let mut prog = p.clone();
    for _ in 0..2 {
        let snapshot = prog.clone();
        let mut counter = 0;
        for f in prog.functions.values_mut() {
            f.body = inline_stmt(&f.body, &snapshot, &mut counter);
        }
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::dsl::*;
    use bedrock2::semantics::{Interp, NoExt};
    use riscv_spec::Memory;

    #[test]
    fn leaf_call_is_inlined_and_behavior_preserved() {
        let bump = Function::new("bump", &["x"], &["y"], set("y", add(var("x"), lit(1))));
        let main = Function::new(
            "main",
            &["a"],
            &["r"],
            block([
                call(&["t"], "bump", [var("a")]),
                call(&["r"], "bump", [var("t")]),
            ]),
        );
        let p = Program::from_functions([bump, main]);
        let q = inline_program(&p);
        assert!(
            q.functions["main"].body.callees().is_empty(),
            "calls should be gone: {:?}",
            q.functions["main"].body
        );
        let mut pi = Interp::new(&p, Memory::with_size(64), NoExt);
        let mut qi = Interp::new(&q, Memory::with_size(64), NoExt);
        assert_eq!(
            pi.call("main", &[5]).unwrap(),
            qi.call("main", &[5]).unwrap()
        );
    }

    #[test]
    fn local_name_clashes_are_avoided() {
        // Callee uses a local named like the caller's; inlining must rename.
        let f = Function::new("sq", &["t"], &["t"], set("t", mul(var("t"), var("t"))));
        let main = Function::new(
            "main",
            &["t"],
            &["r"],
            block([
                call(&["u"], "sq", [lit(3)]),
                set("r", add(var("u"), var("t"))),
            ]),
        );
        let p = Program::from_functions([f, main]);
        let q = inline_program(&p);
        let mut qi = Interp::new(&q, Memory::with_size(64), NoExt);
        assert_eq!(qi.call("main", &[10]).unwrap(), vec![19]);
    }

    #[test]
    fn large_functions_are_not_inlined() {
        let mut big = Vec::new();
        for i in 0..INLINE_THRESHOLD + 1 {
            big.push(set("y", add(var("y"), lit(i as u32))));
        }
        let f = Function::new("big", &["y"], &["y"], block(big));
        let main = Function::new("main", &[], &["r"], call(&["r"], "big", [lit(0)]));
        let p = Program::from_functions([f, main]);
        let q = inline_program(&p);
        assert_eq!(q.functions["main"].body.callees(), vec!["big"]);
    }

    #[test]
    fn two_rounds_reach_grandchildren() {
        let leaf = Function::new("leaf", &["x"], &["y"], set("y", add(var("x"), lit(1))));
        let mid = Function::new("mid", &["x"], &["y"], call(&["y"], "leaf", [var("x")]));
        let main = Function::new("main", &[], &["r"], call(&["r"], "mid", [lit(40)]));
        let p = Program::from_functions([leaf, mid, main]);
        let q = inline_program(&p);
        assert!(q.functions["main"].body.callees().is_empty());
        let mut qi = Interp::new(&q, Memory::with_size(64), NoExt);
        assert_eq!(qi.call("main", &[]).unwrap(), vec![41]);
    }
}

//! Layout and link: place functions, resolve control flow, build the boot
//! image, and statically bound stack usage.
//!
//! The output corresponds to the paper's `lightbulb_insts`/`instrencode`:
//! a list of instruction words which, placed at address 0 of a RISC-V
//! machine, runs the program with no bootloader (§5.9). The first
//! instructions are an entry harness that initializes the stack pointer
//! and either calls `main` and halts (for batch programs) or enters the
//! `init(); while(1) loop()` event loop of embedded practice (§5.2).
//!
//! Because recursion is rejected and each frame has a static size, the
//! worst-case stack consumption of the whole program is computed here by a
//! longest-path walk over the call graph — the executable counterpart of
//! the paper's guarantee that "the application will never run out of
//! memory" (§5.3).

use crate::rv32::{AsmInst, CompileError, FnCode, Label};
use obs::Counters;
use riscv_spec::{Instruction, Reg};
use std::collections::{BTreeMap, HashMap};

/// How execution should enter the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// Set up the stack, call `main` once, then `ebreak` (the halt
    /// convention used by tests and batch examples).
    MainThenHalt {
        /// Name of the entry function (no parameters).
        main: String,
    },
    /// Set up the stack, call `init` if given, then call `step` forever —
    /// the `init(); while(1) loop()` idiom (§5.2). The program never halts.
    EventLoop {
        /// Optional initialization function (no parameters).
        init: Option<String>,
        /// The loop body function (no parameters), called repeatedly.
        step: String,
    },
}

/// Compilation options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Initial stack pointer (top of the downward-growing stack).
    pub stack_top: u32,
    /// Bytes available for the stack; when `Some`, compilation fails if the
    /// static worst case exceeds it.
    pub stack_size: Option<u32>,
    /// Entry convention.
    pub entry: Entry,
    /// Run the optimization pipeline (constant folding/propagation, copy
    /// propagation, dead-code elimination, inlining) before compiling.
    /// `false` reproduces the paper's naive verified compiler; `true` is
    /// the "gcc-like" baseline of the §7.2.1 comparison.
    pub optimize: bool,
    /// Ablation: spill every variable instead of allocating registers
    /// (quantifies what the register allocator — one of the optimizations
    /// the paper chose to implement, §7.2 — is worth).
    pub spill_everything: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            stack_top: 0x1_0000,
            stack_size: None,
            entry: Entry::MainThenHalt {
                main: "main".to_string(),
            },
            optimize: false,
            spill_everything: false,
        }
    }
}

/// Per-compilation statistics: wall time of each pass and code-size /
/// register-allocation outcomes. Exported as `compiler.*` counters by
/// [`CompileStats::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Wall time of well-formedness checking, in microseconds.
    pub check_micros: u64,
    /// Wall time of the optimization pipeline (0 when disabled).
    pub opt_micros: u64,
    /// Wall time of flattening to FlatImp.
    pub flatten_micros: u64,
    /// Wall time of register allocation, summed over functions.
    pub regalloc_micros: u64,
    /// Wall time of RV32 code generation, summed over functions.
    pub codegen_micros: u64,
    /// Wall time of layout + linking.
    pub link_micros: u64,
    /// Stack spill slots allocated, summed over functions.
    pub spill_slots: u64,
    /// Functions compiled.
    pub functions: u64,
    /// Instructions in the linked image.
    pub instructions: u64,
}

impl CompileStats {
    /// Exports the stats as `compiler.*` named counters.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("compiler.pass.check_micros", self.check_micros);
        c.set("compiler.pass.opt_micros", self.opt_micros);
        c.set("compiler.pass.flatten_micros", self.flatten_micros);
        c.set("compiler.pass.regalloc_micros", self.regalloc_micros);
        c.set("compiler.pass.codegen_micros", self.codegen_micros);
        c.set("compiler.pass.link_micros", self.link_micros);
        c.set("compiler.regalloc.spill_slots", self.spill_slots);
        c.set("compiler.code.functions", self.functions);
        c.set("compiler.code.instructions", self.instructions);
        c
    }
}

/// A fully linked program image.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The instructions, to be placed at address 0.
    pub insts: Vec<Instruction>,
    /// Base address of each compiled function.
    pub function_addrs: BTreeMap<String, u32>,
    /// The configured initial stack pointer.
    pub stack_top: u32,
    /// Static worst-case stack consumption in bytes.
    pub max_stack_usage: u32,
    /// For [`Entry::EventLoop`] images: the address of the loop head (the
    /// `jal` to the step function). Liveness checking — the paper's
    /// "always eventually back at the loop invariant" (§5.2) — watches the
    /// pc return here.
    pub event_loop_head: Option<u32>,
    /// Pass timings and code-size statistics for this compilation.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// The program as instruction words.
    pub fn words(&self) -> Vec<u32> {
        self.insts.iter().map(riscv_spec::encode).collect()
    }

    /// The program as little-endian bytes (the paper's `instrencode`).
    pub fn bytes(&self) -> Vec<u8> {
        riscv_spec::encode::encode_to_bytes(&self.insts)
    }

    /// Size of the image in bytes.
    pub fn image_size(&self) -> u32 {
        (self.insts.len() * 4) as u32
    }

    /// A human-readable listing with addresses and function markers.
    pub fn listing(&self) -> String {
        let mut addr_names: BTreeMap<u32, &str> = BTreeMap::new();
        for (n, a) in &self.function_addrs {
            addr_names.insert(*a, n);
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let addr = (i * 4) as u32;
            if let Some(name) = addr_names.get(&addr) {
                out.push_str(&format!("\n<{name}>:\n"));
            }
            out.push_str(&format!("{addr:08x}:  {}\n", riscv_spec::disassemble(inst)));
        }
        out
    }
}

fn asm_len(asm: &[AsmInst]) -> u32 {
    asm.iter()
        .filter(|i| !matches!(i, AsmInst::LabelDef(_)))
        .count() as u32
        * 4
}

fn resolve(
    asm: &[AsmInst],
    base: u32,
    fn_addrs: &BTreeMap<String, u32>,
    out: &mut Vec<Instruction>,
) -> Result<(), CompileError> {
    // First pass: label → address.
    let mut labels: HashMap<Label, u32> = HashMap::new();
    let mut pc = base;
    for i in asm {
        match i {
            AsmInst::LabelDef(l) => {
                labels.insert(*l, pc);
            }
            _ => pc += 4,
        }
    }
    // Second pass: materialize.
    let mut pc = base;
    for i in asm {
        let inst = match i {
            AsmInst::LabelDef(_) => continue,
            AsmInst::Real(inst) => *inst,
            AsmInst::SkipIfNonZero { rs } => Instruction::Bne {
                rs1: *rs,
                rs2: Reg::X0,
                offset: 8,
            },
            AsmInst::SkipIfZero { rs } => Instruction::Beq {
                rs1: *rs,
                rs2: Reg::X0,
                offset: 8,
            },
            AsmInst::Jump { label } => {
                let target = labels[label];
                Instruction::Jal {
                    rd: Reg::X0,
                    offset: target.wrapping_sub(pc) as i32,
                }
            }
            AsmInst::CallFn { name } => {
                let target = *fn_addrs
                    .get(name)
                    .ok_or_else(|| CompileError::UnknownFunction(name.clone()))?;
                Instruction::Jal {
                    rd: Reg::X1,
                    offset: target.wrapping_sub(pc) as i32,
                }
            }
        };
        out.push(inst);
        pc += 4;
    }
    Ok(())
}

/// Builds the entry harness; also returns the loop-head address for
/// event-loop entries.
fn harness(entry: &Entry, stack_top: u32) -> (Vec<AsmInst>, Option<u32>) {
    let mut asm = Vec::new();
    // li sp, stack_top
    let v = stack_top;
    if (v as i32) >= -2048 && (v as i32) <= 2047 {
        asm.push(AsmInst::Real(Instruction::Addi {
            rd: Reg::X2,
            rs1: Reg::X0,
            imm: v as i32,
        }));
    } else {
        let hi = v.wrapping_add(0x800) >> 12;
        let lo = riscv_spec::word::sign_extend(v & 0xFFF, 12) as i32;
        asm.push(AsmInst::Real(Instruction::Lui {
            rd: Reg::X2,
            imm20: hi & 0xFFFFF,
        }));
        if lo != 0 {
            asm.push(AsmInst::Real(Instruction::Addi {
                rd: Reg::X2,
                rs1: Reg::X2,
                imm: lo,
            }));
        }
    }
    let mut head_addr = None;
    match entry {
        Entry::MainThenHalt { main } => {
            asm.push(AsmInst::CallFn { name: main.clone() });
            asm.push(AsmInst::Real(Instruction::Ebreak));
        }
        Entry::EventLoop { init, step } => {
            if let Some(init) = init {
                asm.push(AsmInst::CallFn { name: init.clone() });
            }
            let head = Label(0);
            head_addr = Some(asm_len(&asm));
            asm.push(AsmInst::LabelDef(head));
            asm.push(AsmInst::CallFn { name: step.clone() });
            asm.push(AsmInst::Jump { label: head });
        }
    }
    (asm, head_addr)
}

fn stack_usage(
    name: &str,
    codes: &BTreeMap<String, FnCode>,
    memo: &mut HashMap<String, u32>,
    visiting: &mut Vec<String>,
) -> Result<u32, CompileError> {
    if let Some(u) = memo.get(name) {
        return Ok(*u);
    }
    if visiting.iter().any(|v| v == name) {
        return Err(CompileError::Recursion(name.to_string()));
    }
    let code = codes
        .get(name)
        .ok_or_else(|| CompileError::UnknownFunction(name.to_string()))?;
    visiting.push(name.to_string());
    let mut worst_callee = 0;
    for c in &code.callees {
        worst_callee = worst_callee.max(stack_usage(c, codes, memo, visiting)?);
    }
    visiting.pop();
    let total = code.frame.size() + worst_callee;
    memo.insert(name.to_string(), total);
    Ok(total)
}

/// Links compiled functions with an entry harness into a boot image.
///
/// # Errors
///
/// Reports unresolved calls, recursion discovered during the stack-usage
/// walk, missing entry functions, and a stack region too small for the
/// static worst case.
pub fn link(
    codes: BTreeMap<String, FnCode>,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    // Validate entry functions exist.
    let entry_fns: Vec<&String> = match &opts.entry {
        Entry::MainThenHalt { main } => vec![main],
        Entry::EventLoop { init, step } => init.iter().chain(std::iter::once(step)).collect(),
    };
    for e in &entry_fns {
        if !codes.contains_key(*e) {
            return Err(CompileError::BadEntry((*e).clone()));
        }
    }

    let (harness_asm, event_loop_head) = harness(&opts.entry, opts.stack_top);

    // Layout: harness at 0, then functions in name order.
    let mut fn_addrs: BTreeMap<String, u32> = BTreeMap::new();
    let mut cursor = asm_len(&harness_asm);
    for (name, code) in &codes {
        fn_addrs.insert(name.clone(), cursor);
        cursor += asm_len(&code.asm);
    }

    let mut insts = Vec::with_capacity((cursor / 4) as usize);
    resolve(&harness_asm, 0, &fn_addrs, &mut insts)?;
    for (name, code) in &codes {
        resolve(&code.asm, fn_addrs[name], &fn_addrs, &mut insts)?;
    }

    // Static stack bound.
    let mut memo = HashMap::new();
    let mut max_stack_usage = 0;
    for e in &entry_fns {
        max_stack_usage = max_stack_usage.max(stack_usage(e, &codes, &mut memo, &mut Vec::new())?);
    }
    if let Some(available) = opts.stack_size {
        if max_stack_usage > available {
            return Err(CompileError::StackTooSmall {
                required: max_stack_usage,
                available,
            });
        }
    }

    Ok(CompiledProgram {
        insts,
        function_addrs: fn_addrs,
        stack_top: opts.stack_top,
        max_stack_usage,
        event_loop_head,
        stats: CompileStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv32::FrameLayout;

    fn dummy_code(name: &str, callees: Vec<String>, frame_bytes: u32) -> FnCode {
        FnCode {
            name: name.to_string(),
            asm: vec![AsmInst::Real(Instruction::Jalr {
                rd: Reg::X0,
                rs1: Reg::X1,
                offset: 0,
            })],
            frame: FrameLayout {
                alloca_bytes: frame_bytes,
                nspills: 0,
                saved: vec![],
                nargs: 0,
                nrets: 0,
            },
            callees,
        }
    }

    #[test]
    fn stack_usage_is_longest_path() {
        let mut codes = BTreeMap::new();
        codes.insert("a".into(), dummy_code("a", vec!["b".into(), "c".into()], 0));
        codes.insert("b".into(), dummy_code("b", vec![], 100));
        codes.insert("c".into(), dummy_code("c", vec![], 40));
        let opts = CompileOptions {
            entry: Entry::MainThenHalt { main: "a".into() },
            ..CompileOptions::default()
        };
        let p = link(codes, &opts).unwrap();
        // a's own frame is 4 bytes (just ra slot), plus max(b, c) rounded:
        // b = 100 + 4, c = 40 + 4.
        assert_eq!(p.max_stack_usage, 4 + 104);
    }

    #[test]
    fn stack_too_small_is_reported() {
        let mut codes = BTreeMap::new();
        codes.insert("main".into(), dummy_code("main", vec![], 1000));
        let opts = CompileOptions {
            stack_size: Some(100),
            ..CompileOptions::default()
        };
        assert!(matches!(
            link(codes, &opts),
            Err(CompileError::StackTooSmall { .. })
        ));
    }

    #[test]
    fn missing_entry_is_reported() {
        let opts = CompileOptions::default();
        assert!(matches!(
            link(BTreeMap::new(), &opts),
            Err(CompileError::BadEntry(name)) if name == "main"
        ));
    }

    #[test]
    fn event_loop_harness_loops_forever() {
        let mut codes = BTreeMap::new();
        codes.insert("step".into(), dummy_code("step", vec![], 0));
        let opts = CompileOptions {
            entry: Entry::EventLoop {
                init: None,
                step: "step".into(),
            },
            ..CompileOptions::default()
        };
        let p = link(codes, &opts).unwrap();
        // The harness must contain a backwards jal x0 (the infinite loop).
        assert!(p
            .insts
            .iter()
            .any(|i| matches!(i, Instruction::Jal { rd, offset } if rd.is_zero() && *offset < 0)));
        // And no ebreak anywhere.
        assert!(!p.insts.iter().any(|i| matches!(i, Instruction::Ebreak)));
    }
}

//! Phase 2: register allocation.
//!
//! Turns "FlatImp with variables" into "FlatImp with registers" by
//! computing liveness over the structured control flow, building an
//! interference graph, and coloring it with the allocatable registers;
//! variables that do not fit are spilled to numbered stack slots which the
//! code generator addresses off `sp`.
//!
//! The allocator is deliberately simple (the paper's compiler "does not …
//! exploit caller-saved registers", §7.2.1): every allocatable register is
//! callee-saved, so liveness does not need to model call clobbering, and
//! correctness reduces to the classic condition that simultaneously-live
//! variables get distinct locations — which [`verify_allocation`] rechecks
//! after the fact, and property tests check on random programs.

use crate::flatimp::{FStmt, FlatFunction, FlatVar};
use riscv_spec::Reg;
use std::collections::{HashMap, HashSet};

/// Registers handed out by the allocator: `x8`–`x31`.
///
/// `x0` is zero, `x1`/`x2` are `ra`/`sp`, `x3`/`x4` are left unused (they
/// are `gp`/`tp` in the standard ABI), and `x5`–`x7` are reserved as code
/// generator scratch registers.
pub fn allocatable_registers() -> Vec<Reg> {
    (8..32).map(Reg::new).collect()
}

/// A machine location assigned to a FlatImp variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A register.
    Reg(Reg),
    /// The `index`-th word-sized spill slot in the function's frame.
    Spill(u32),
}

/// The result of allocating one function.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of each variable, indexed by [`FlatVar`].
    pub map: Vec<Loc>,
    /// Number of spill slots used.
    pub nspills: u32,
    /// Registers actually used, in ascending order (the prologue saves
    /// exactly these).
    pub used_regs: Vec<Reg>,
}

impl Allocation {
    /// The location of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the allocated function.
    pub fn loc(&self, v: FlatVar) -> Loc {
        self.map[v as usize]
    }
}

/// Interference-graph construction via backward liveness.
struct Analysis {
    edges: HashMap<FlatVar, HashSet<FlatVar>>,
}

impl Analysis {
    fn new(nvars: u32) -> Analysis {
        Analysis {
            edges: (0..nvars).map(|v| (v, HashSet::new())).collect(),
        }
    }

    fn interfere(&mut self, a: FlatVar, b: FlatVar) {
        if a != b {
            self.edges.entry(a).or_default().insert(b);
            self.edges.entry(b).or_default().insert(a);
        }
    }

    fn def(&mut self, d: FlatVar, live: &mut HashSet<FlatVar>, except: Option<FlatVar>) {
        for &l in live.iter() {
            if Some(l) != except {
                self.interfere(d, l);
            }
        }
        live.remove(&d);
    }

    /// Backward transfer: given variables live *after* `s`, returns the set
    /// live *before* it, recording interference at each definition point.
    fn live_in(&mut self, s: &FStmt<FlatVar>, out: &HashSet<FlatVar>) -> HashSet<FlatVar> {
        let mut live = out.clone();
        self.transfer(s, &mut live);
        live
    }

    fn transfer(&mut self, s: &FStmt<FlatVar>, live: &mut HashSet<FlatVar>) {
        match s {
            FStmt::Skip => {}
            FStmt::Lit { dest, .. } => self.def(*dest, live, None),
            FStmt::Copy { dest, src } => {
                self.def(*dest, live, Some(*src));
                live.insert(*src);
            }
            FStmt::Op { dest, a, b, .. } => {
                self.def(*dest, live, None);
                live.insert(*a);
                live.insert(*b);
            }
            FStmt::Load { dest, addr, .. } => {
                self.def(*dest, live, None);
                live.insert(*addr);
            }
            FStmt::Store { addr, value, .. } => {
                live.insert(*addr);
                live.insert(*value);
            }
            FStmt::If { cond, then_, else_ } => {
                let t = self.live_in(then_, live);
                let e = self.live_in(else_, live);
                *live = &t | &e;
                live.insert(*cond);
            }
            FStmt::Loop {
                cond_stmts,
                cond,
                body,
            } => {
                // Fixpoint: the head set only grows, so this terminates.
                let exit = live.clone();
                let mut head: HashSet<FlatVar> = HashSet::new();
                loop {
                    let body_in = self.live_in(body, &head);
                    let mut after_cond = &exit | &body_in;
                    after_cond.insert(*cond);
                    let new_head = self.live_in(cond_stmts, &after_cond);
                    let grown: HashSet<FlatVar> = &head | &new_head;
                    if grown == head {
                        break;
                    }
                    head = grown;
                }
                *live = head;
            }
            FStmt::Seq(ss) => {
                for s in ss.iter().rev() {
                    self.transfer(s, live);
                }
            }
            FStmt::Call { rets, args, .. } | FStmt::Interact { rets, args, .. } => {
                // All results are written "simultaneously" by the return
                // sequence, so they interfere pairwise as well.
                for (i, r) in rets.iter().enumerate() {
                    for r2 in &rets[i + 1..] {
                        self.interfere(*r, *r2);
                    }
                }
                for r in rets {
                    self.def(*r, live, None);
                    // def() removed r; other rets stay conceptually live
                    // during the return move sequence:
                }
                for (i, r) in rets.iter().enumerate() {
                    for r2 in &rets[i + 1..] {
                        self.interfere(*r, *r2);
                    }
                }
                for a in args {
                    live.insert(*a);
                }
            }
            FStmt::Stackalloc { dest, body, .. } => {
                self.transfer(body, live);
                self.def(*dest, live, None);
            }
        }
    }
}

/// The prologue writes *every* parameter from its argument slot, whether or
/// not the body reads it — so parameters must interfere pairwise and with
/// everything live at entry (a dead parameter sharing a live one's register
/// would be clobbered by its own incoming load).
fn entry_clique(an: &mut Analysis, f: &FlatFunction<FlatVar>, entry_live: &HashSet<FlatVar>) {
    let mut entry: Vec<FlatVar> = entry_live.iter().copied().collect();
    for p in &f.params {
        if !entry.contains(p) {
            entry.push(*p);
        }
    }
    for (i, a) in entry.iter().enumerate() {
        for b in &entry[i + 1..] {
            an.interfere(*a, *b);
        }
    }
}

/// Allocates registers for one function.
pub fn allocate(f: &FlatFunction<FlatVar>) -> Allocation {
    let regs = allocatable_registers();
    let k = regs.len();
    let mut an = Analysis::new(f.nvars);

    // At the end of the function all return variables are read.
    let out: HashSet<FlatVar> = f.rets.iter().copied().collect();
    let entry_live = an.live_in(&f.body, &out);
    entry_clique(&mut an, f, &entry_live);

    // Chaitin-style simplification.
    let mut degree: HashMap<FlatVar, usize> = an.edges.iter().map(|(v, e)| (*v, e.len())).collect();
    let mut removed: HashSet<FlatVar> = HashSet::new();
    let mut stack: Vec<FlatVar> = Vec::new();
    while removed.len() < f.nvars as usize {
        let pick_low = (0..f.nvars).find(|v| !removed.contains(v) && degree[v] < k);
        let v = match pick_low {
            Some(v) => v,
            // No low-degree node: remove the highest-degree one; it becomes
            // a spill candidate when no color is free at selection time.
            None => (0..f.nvars)
                .filter(|v| !removed.contains(v))
                .max_by_key(|v| degree[v])
                .expect("loop condition guarantees a node remains"),
        };
        removed.insert(v);
        stack.push(v);
        for n in &an.edges[&v] {
            if !removed.contains(n) {
                *degree.get_mut(n).expect("all nodes pre-inserted") -= 1;
            }
        }
    }

    // Selection.
    let mut map: Vec<Option<Loc>> = vec![None; f.nvars as usize];
    let mut nspills = 0u32;
    for v in stack.into_iter().rev() {
        let neighbor_regs: HashSet<Reg> = an.edges[&v]
            .iter()
            .filter_map(|n| match map[*n as usize] {
                Some(Loc::Reg(r)) => Some(r),
                _ => None,
            })
            .collect();
        let free = regs.iter().find(|r| !neighbor_regs.contains(r));
        map[v as usize] = Some(match free {
            Some(r) => Loc::Reg(*r),
            None => {
                let slot = nspills;
                nspills += 1;
                Loc::Spill(slot)
            }
        });
    }

    let map: Vec<Loc> = map
        .into_iter()
        .map(|l| l.expect("all vars selected"))
        .collect();
    let mut used: Vec<Reg> = map
        .iter()
        .filter_map(|l| match l {
            Loc::Reg(r) => Some(*r),
            _ => None,
        })
        .collect();
    used.sort();
    used.dedup();
    Allocation {
        map,
        nspills,
        used_regs: used,
    }
}

/// A degenerate allocation that spills **every** variable to the stack,
/// using no allocatable registers at all. This is the ablation point for
/// the register-allocation design choice the paper calls out implementing
/// (§7.2): comparing against [`allocate`] quantifies what the allocator
/// buys. It is also the hardest exercise of the code generator's spill
/// paths, so the differential tests run it too.
pub fn allocate_spill_all(f: &FlatFunction<FlatVar>) -> Allocation {
    Allocation {
        map: (0..f.nvars).map(Loc::Spill).collect(),
        nspills: f.nvars,
        used_regs: Vec::new(),
    }
}

/// Rewrites a function over numbered variables into one over machine
/// locations ("FlatImp with registers").
pub fn apply_allocation(f: &FlatFunction<FlatVar>, alloc: &Allocation) -> FlatFunction<Loc> {
    FlatFunction {
        name: f.name.clone(),
        params: f.params.iter().map(|v| alloc.loc(*v)).collect(),
        rets: f.rets.iter().map(|v| alloc.loc(*v)).collect(),
        body: f.body.map_vars(&mut |v| alloc.loc(*v)),
        nvars: f.nvars,
    }
}

/// Independently rechecks an allocation: recomputes interference and
/// verifies that no interfering pair shares a location.
///
/// # Errors
///
/// Returns a description of the first conflict found.
pub fn verify_allocation(f: &FlatFunction<FlatVar>, alloc: &Allocation) -> Result<(), String> {
    let mut an = Analysis::new(f.nvars);
    let out: HashSet<FlatVar> = f.rets.iter().copied().collect();
    let entry_live = an.live_in(&f.body, &out);
    entry_clique(&mut an, f, &entry_live);
    for (v, ns) in &an.edges {
        for n in ns {
            if alloc.loc(*v) == alloc.loc(*n) {
                return Err(format!(
                    "variables {v} and {n} interfere but share {:?}",
                    alloc.loc(*v)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten_function;
    use bedrock2::ast::Function;
    use bedrock2::dsl::*;

    fn alloc_of(f: Function) -> (crate::flatimp::FlatFunction<FlatVar>, Allocation) {
        let ff = flatten_function(&f);
        let a = allocate(&ff);
        verify_allocation(&ff, &a).expect("allocation must verify");
        (ff, a)
    }

    #[test]
    fn simple_function_needs_few_registers() {
        let (_, a) = alloc_of(Function::new(
            "f",
            &["x", "y"],
            &["r"],
            set("r", add(var("x"), var("y"))),
        ));
        assert_eq!(a.nspills, 0);
        assert!(a.used_regs.len() <= 4);
    }

    #[test]
    fn interfering_vars_get_distinct_registers() {
        let (ff, a) = alloc_of(Function::new(
            "f",
            &["x", "y"],
            &["r"],
            block([
                set("a", add(var("x"), lit(1))),
                set("b", add(var("y"), lit(2))),
                set("r", add(mul(var("a"), var("a")), mul(var("b"), var("b")))),
            ]),
        ));
        // a and b are simultaneously live.
        assert!(verify_allocation(&ff, &a).is_ok());
        assert_eq!(a.nspills, 0);
    }

    #[test]
    fn loop_carried_variables_stay_live() {
        let (_, a) = alloc_of(Function::new(
            "f",
            &["n"],
            &["s"],
            block([
                set("s", lit(0)),
                while_(
                    var("n"),
                    block([
                        set("s", add(var("s"), var("n"))),
                        set("n", sub(var("n"), lit(1))),
                    ]),
                ),
            ]),
        ));
        assert_eq!(a.nspills, 0);
    }

    #[test]
    fn high_pressure_spills_but_verifies() {
        // Build 30 simultaneously-live variables, exceeding the 24
        // allocatable registers.
        let mut stmts = Vec::new();
        for i in 0..30 {
            stmts.push(set(&format!("v{i}"), add(var("x"), lit(i))));
        }
        let mut sum = var("v0");
        for i in 1..30 {
            sum = add(sum, var(&format!("v{i}")));
        }
        stmts.push(set("r", sum));
        let (_, a) = alloc_of(Function::new("f", &["x"], &["r"], block(stmts)));
        assert!(a.nspills > 0, "expected spills under high pressure");
    }

    #[test]
    fn copy_related_vars_may_share_a_register() {
        // y = x; return y — x and y may share a location (no interference
        // through the copy).
        let (ff, a) = alloc_of(Function::new("f", &["x"], &["y"], set("y", var("x"))));
        assert!(verify_allocation(&ff, &a).is_ok());
    }

    #[test]
    fn allocatable_registers_exclude_reserved() {
        let regs = allocatable_registers();
        assert_eq!(regs.len(), 24);
        for r in &regs {
            assert!(
                r.index() >= 8,
                "reserved register {r} must not be allocatable"
            );
        }
    }
}

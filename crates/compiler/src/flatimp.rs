//! FlatImp: the compiler's intermediate language.
//!
//! FlatImp is Bedrock2 with expressions flattened into three-address
//! statements. It is *generic over the variable type* `V`: after the
//! flattening phase variables are numbered temporaries ([`FlatVar`], the
//! paper's "FlatImp with variables"); after register allocation they are
//! machine locations ([`crate::regalloc::Loc`], the paper's "FlatImp with
//! registers"). The two layers share this one syntax, exactly as in Figure 3
//! of the paper.

use bedrock2::ast::{BinOp, Size};
use riscv_spec::Memory;
use std::collections::HashMap;

/// A numbered FlatImp variable (pre-register-allocation).
pub type FlatVar = u32;

/// A FlatImp statement over variables of type `V`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FStmt<V> {
    /// Does nothing.
    Skip,
    /// `dest = value` (word literal).
    Lit {
        /// Destination variable.
        dest: V,
        /// The literal value.
        value: u32,
    },
    /// `dest = src`.
    Copy {
        /// Destination variable.
        dest: V,
        /// Source variable.
        src: V,
    },
    /// `dest = a ⊕ b`.
    Op {
        /// Destination variable.
        dest: V,
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: V,
        /// Right operand.
        b: V,
    },
    /// `dest = load<size>(addr)`.
    Load {
        /// Destination variable.
        dest: V,
        /// Access width.
        size: Size,
        /// Variable holding the address.
        addr: V,
    },
    /// `store<size>(addr, value)`.
    Store {
        /// Access width.
        size: Size,
        /// Variable holding the address.
        addr: V,
        /// Variable holding the value.
        value: V,
    },
    /// `if (cond != 0) { then_ } else { else_ }`.
    If {
        /// Condition variable (tested against zero).
        cond: V,
        /// Taken branch.
        then_: Box<FStmt<V>>,
        /// Fallthrough branch.
        else_: Box<FStmt<V>>,
    },
    /// `loop { cond_stmts; if (cond == 0) break; body }` — a `while` whose
    /// condition computation was flattened into `cond_stmts`.
    Loop {
        /// Statements recomputing the condition each iteration.
        cond_stmts: Box<FStmt<V>>,
        /// Condition variable (tested against zero after `cond_stmts`).
        cond: V,
        /// Loop body.
        body: Box<FStmt<V>>,
    },
    /// Sequential composition.
    Seq(Vec<FStmt<V>>),
    /// Call to a FlatImp-compiled function.
    Call {
        /// Variables receiving the results.
        rets: Vec<V>,
        /// Callee name.
        f: String,
        /// Variables holding the arguments.
        args: Vec<V>,
    },
    /// External call (compiled by the pluggable external-calls compiler,
    /// §6.3).
    Interact {
        /// Variables receiving the results.
        rets: Vec<V>,
        /// External procedure name.
        action: String,
        /// Variables holding the arguments.
        args: Vec<V>,
    },
    /// `dest = <address of a fresh n-byte stack region>; body`.
    Stackalloc {
        /// Variable receiving the region's address.
        dest: V,
        /// Region size in bytes (already rounded to a word multiple by
        /// flattening).
        nbytes: u32,
        /// Scope of the allocation.
        body: Box<FStmt<V>>,
    },
}

impl<V> FStmt<V> {
    /// Applies `f` to every variable occurrence, producing a statement over
    /// a new variable type. This is how register allocation rewrites
    /// "FlatImp with variables" into "FlatImp with registers".
    pub fn map_vars<W>(&self, f: &mut impl FnMut(&V) -> W) -> FStmt<W> {
        match self {
            FStmt::Skip => FStmt::Skip,
            FStmt::Lit { dest, value } => FStmt::Lit {
                dest: f(dest),
                value: *value,
            },
            FStmt::Copy { dest, src } => FStmt::Copy {
                dest: f(dest),
                src: f(src),
            },
            FStmt::Op { dest, op, a, b } => FStmt::Op {
                dest: f(dest),
                op: *op,
                a: f(a),
                b: f(b),
            },
            FStmt::Load { dest, size, addr } => FStmt::Load {
                dest: f(dest),
                size: *size,
                addr: f(addr),
            },
            FStmt::Store { size, addr, value } => FStmt::Store {
                size: *size,
                addr: f(addr),
                value: f(value),
            },
            FStmt::If { cond, then_, else_ } => FStmt::If {
                cond: f(cond),
                then_: Box::new(then_.map_vars(f)),
                else_: Box::new(else_.map_vars(f)),
            },
            FStmt::Loop {
                cond_stmts,
                cond,
                body,
            } => FStmt::Loop {
                cond_stmts: Box::new(cond_stmts.map_vars(f)),
                cond: f(cond),
                body: Box::new(body.map_vars(f)),
            },
            FStmt::Seq(ss) => FStmt::Seq(ss.iter().map(|s| s.map_vars(f)).collect()),
            FStmt::Call {
                rets,
                f: name,
                args,
            } => FStmt::Call {
                rets: rets.iter().map(&mut *f).collect(),
                f: name.clone(),
                args: args.iter().map(&mut *f).collect(),
            },
            FStmt::Interact { rets, action, args } => FStmt::Interact {
                rets: rets.iter().map(&mut *f).collect(),
                action: action.clone(),
                args: args.iter().map(&mut *f).collect(),
            },
            FStmt::Stackalloc { dest, nbytes, body } => FStmt::Stackalloc {
                dest: f(dest),
                nbytes: *nbytes,
                body: Box::new(body.map_vars(f)),
            },
        }
    }

    /// Total bytes of `Stackalloc` regions in this statement (each
    /// allocation gets a statically disjoint region, so this is the sum).
    pub fn stackalloc_bytes(&self) -> u32 {
        match self {
            FStmt::If { then_, else_, .. } => then_.stackalloc_bytes() + else_.stackalloc_bytes(),
            FStmt::Loop {
                cond_stmts, body, ..
            } => cond_stmts.stackalloc_bytes() + body.stackalloc_bytes(),
            FStmt::Seq(ss) => ss.iter().map(FStmt::stackalloc_bytes).sum(),
            FStmt::Stackalloc { nbytes, body, .. } => nbytes + body.stackalloc_bytes(),
            _ => 0,
        }
    }
}

/// A FlatImp function: numbered parameters and returns plus a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatFunction<V> {
    /// The function's name (unchanged from Bedrock2).
    pub name: String,
    /// Parameter variables, bound on entry.
    pub params: Vec<V>,
    /// Variables whose final values are returned.
    pub rets: Vec<V>,
    /// The body.
    pub body: FStmt<V>,
    /// Number of distinct variables (valid ids are `0..nvars`); only
    /// meaningful for `V = FlatVar`.
    pub nvars: u32,
}

/// A FlatImp program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlatProgram<V> {
    /// Functions by name.
    pub functions: std::collections::BTreeMap<String, FlatFunction<V>>,
}

/// Errors of the FlatImp reference interpreter (used only in testing the
/// flattening phase, so a plain descriptive enum suffices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlatUb {
    /// Memory access out of bounds or misaligned.
    BadAccess {
        /// Faulting address.
        addr: u32,
        /// Access width.
        size: Size,
    },
    /// Call to an unknown function.
    UnknownFunction(String),
    /// External call refused by the handler.
    ExternalRefused(String),
    /// Fuel exhausted.
    OutOfFuel,
    /// Stack region exhausted.
    StackOverflow,
}

/// Reference interpreter for FlatImp over numbered variables, used to
/// differentially test the flattening phase against the Bedrock2
/// interpreter.
#[derive(Debug)]
pub struct FlatInterp<'p, E> {
    prog: &'p FlatProgram<FlatVar>,
    /// Memory shared with the source-level run.
    pub mem: Memory,
    /// The interaction trace as `(action, args, rets)`.
    pub trace: Vec<bedrock2::IoEvent>,
    /// External environment (same trait as the Bedrock2 interpreter).
    pub ext: E,
    /// Remaining fuel.
    pub fuel: u64,
    stack_ptr: u32,
    stack_limit: u32,
}

impl<'p, E: bedrock2::ExtHandler> FlatInterp<'p, E> {
    /// Creates an interpreter; the stack region mirrors the Bedrock2
    /// interpreter's default (top half of memory).
    pub fn new(prog: &'p FlatProgram<FlatVar>, mem: Memory, ext: E) -> FlatInterp<'p, E> {
        let top = mem.size();
        FlatInterp {
            prog,
            mem,
            trace: Vec::new(),
            ext,
            fuel: bedrock2::semantics::DEFAULT_FUEL,
            stack_ptr: top,
            stack_limit: top / 2,
        }
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Any [`FlatUb`] reached during execution.
    pub fn call(&mut self, name: &str, args: &[u32]) -> Result<Vec<u32>, FlatUb> {
        let f = self
            .prog
            .functions
            .get(name)
            .ok_or_else(|| FlatUb::UnknownFunction(name.to_string()))?;
        let mut env: HashMap<FlatVar, u32> = HashMap::new();
        for (p, v) in f.params.iter().zip(args) {
            env.insert(*p, *v);
        }
        self.exec(&f.body, &mut env)?;
        Ok(f.rets
            .iter()
            .map(|r| env.get(r).copied().unwrap_or(0))
            .collect())
    }

    fn burn(&mut self) -> Result<(), FlatUb> {
        if self.fuel == 0 {
            return Err(FlatUb::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec(&mut self, s: &FStmt<FlatVar>, env: &mut HashMap<FlatVar, u32>) -> Result<(), FlatUb> {
        self.burn()?;
        let get = |env: &HashMap<FlatVar, u32>, v: &FlatVar| env.get(v).copied().unwrap_or(0);
        match s {
            FStmt::Skip => Ok(()),
            FStmt::Lit { dest, value } => {
                env.insert(*dest, *value);
                Ok(())
            }
            FStmt::Copy { dest, src } => {
                let v = get(env, src);
                env.insert(*dest, v);
                Ok(())
            }
            FStmt::Op { dest, op, a, b } => {
                let v = op.eval(get(env, a), get(env, b));
                env.insert(*dest, v);
                Ok(())
            }
            FStmt::Load { dest, size, addr } => {
                let a = get(env, addr);
                let v = self.load(*size, a)?;
                env.insert(*dest, v);
                Ok(())
            }
            FStmt::Store { size, addr, value } => {
                let a = get(env, addr);
                let v = get(env, value);
                self.store(*size, a, v)
            }
            FStmt::If { cond, then_, else_ } => {
                if get(env, cond) != 0 {
                    self.exec(then_, env)
                } else {
                    self.exec(else_, env)
                }
            }
            FStmt::Loop {
                cond_stmts,
                cond,
                body,
            } => loop {
                self.exec(cond_stmts, env)?;
                if get(env, cond) == 0 {
                    return Ok(());
                }
                self.exec(body, env)?;
                self.burn()?;
            },
            FStmt::Seq(ss) => {
                for s in ss {
                    self.exec(s, env)?;
                }
                Ok(())
            }
            FStmt::Call { rets, f, args } => {
                let argv: Vec<u32> = args.iter().map(|a| get(env, a)).collect();
                let retv = self.call(f, &argv)?;
                for (r, v) in rets.iter().zip(retv) {
                    env.insert(*r, v);
                }
                Ok(())
            }
            FStmt::Interact { rets, action, args } => {
                let argv: Vec<u32> = args.iter().map(|a| get(env, a)).collect();
                let retv = self
                    .ext
                    .call(action, &argv, &mut self.mem)
                    .map_err(FlatUb::ExternalRefused)?;
                self.trace.push(bedrock2::IoEvent {
                    action: action.clone(),
                    args: argv,
                    rets: retv.clone(),
                });
                for (r, v) in rets.iter().zip(retv) {
                    env.insert(*r, v);
                }
                Ok(())
            }
            FStmt::Stackalloc { dest, nbytes, body } => {
                let new_sp = self
                    .stack_ptr
                    .checked_sub(*nbytes)
                    .ok_or(FlatUb::StackOverflow)?;
                if new_sp < self.stack_limit {
                    return Err(FlatUb::StackOverflow);
                }
                let saved = self.stack_ptr;
                self.stack_ptr = new_sp;
                env.insert(*dest, new_sp);
                let out = self.exec(body, env);
                self.stack_ptr = saved;
                out
            }
        }
    }

    fn load(&mut self, size: Size, addr: u32) -> Result<u32, FlatUb> {
        if !riscv_spec::word::is_aligned(addr, size.bytes()) {
            return Err(FlatUb::BadAccess { addr, size });
        }
        match size {
            Size::One => self.mem.load_u8(addr).map(|v| v as u32),
            Size::Two => self.mem.load_u16(addr).map(|v| v as u32),
            Size::Four => self.mem.load_u32(addr),
        }
        .map_err(|_| FlatUb::BadAccess { addr, size })
    }

    fn store(&mut self, size: Size, addr: u32, v: u32) -> Result<(), FlatUb> {
        if !riscv_spec::word::is_aligned(addr, size.bytes()) {
            return Err(FlatUb::BadAccess { addr, size });
        }
        match size {
            Size::One => self.mem.store_u8(addr, v as u8),
            Size::Two => self.mem.store_u16(addr, v as u16),
            Size::Four => self.mem.store_u32(addr, v),
        }
        .map_err(|_| FlatUb::BadAccess { addr, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::semantics::NoExt;

    fn seq(v: Vec<FStmt<FlatVar>>) -> FStmt<FlatVar> {
        FStmt::Seq(v)
    }

    #[test]
    fn flat_interp_runs_loop() {
        // f(n) -> s: s=0; loop { c = n != 0 (as n itself); if !n break; s+=n; n-=1 }
        let body = seq(vec![
            FStmt::Lit { dest: 1, value: 0 },
            FStmt::Loop {
                cond_stmts: Box::new(FStmt::Copy { dest: 2, src: 0 }),
                cond: 2,
                body: Box::new(seq(vec![
                    FStmt::Op {
                        dest: 1,
                        op: BinOp::Add,
                        a: 1,
                        b: 0,
                    },
                    FStmt::Lit { dest: 3, value: 1 },
                    FStmt::Op {
                        dest: 0,
                        op: BinOp::Sub,
                        a: 0,
                        b: 3,
                    },
                ])),
            },
        ]);
        let f = FlatFunction {
            name: "sum".into(),
            params: vec![0],
            rets: vec![1],
            body,
            nvars: 4,
        };
        let mut prog = FlatProgram::default();
        prog.functions.insert("sum".into(), f);
        let mut i = FlatInterp::new(&prog, Memory::with_size(64), NoExt);
        assert_eq!(i.call("sum", &[10]).unwrap(), vec![55]);
    }

    #[test]
    fn map_vars_changes_variable_type() {
        let s: FStmt<FlatVar> = FStmt::Op {
            dest: 0,
            op: BinOp::Add,
            a: 1,
            b: 2,
        };
        let mapped: FStmt<String> = s.map_vars(&mut |v| format!("v{v}"));
        assert_eq!(
            mapped,
            FStmt::Op {
                dest: "v0".into(),
                op: BinOp::Add,
                a: "v1".into(),
                b: "v2".into()
            }
        );
    }

    #[test]
    fn stackalloc_bytes_sums_all_regions() {
        let s: FStmt<FlatVar> = seq(vec![
            FStmt::Stackalloc {
                dest: 0,
                nbytes: 8,
                body: Box::new(FStmt::Skip),
            },
            FStmt::If {
                cond: 1,
                then_: Box::new(FStmt::Stackalloc {
                    dest: 2,
                    nbytes: 16,
                    body: Box::new(FStmt::Skip),
                }),
                else_: Box::new(FStmt::Skip),
            },
        ]);
        assert_eq!(s.stackalloc_bytes(), 24);
    }
}

//! lightbulb-system: an executable, library-grade reproduction of
//! *Integration Verification across Software and Hardware for a Simple
//! Embedded System* (Erbsen, Gruetter, Choi, Wood & Chlipala, PLDI 2021).
//!
//! The paper builds an Ethernet-connected IoT lightbulb whose application
//! software, drivers, compiler, ISA semantics, and pipelined RISC-V
//! processor are all modeled in Coq and related by one machine-checked
//! end-to-end theorem about the system's MMIO trace. This workspace
//! rebuilds every one of those components as a running Rust system and
//! replaces each proof with an executable check of the same statement —
//! see `DESIGN.md` for the layer-by-layer correspondence and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! This facade crate re-exports the whole stack:
//!
//! | layer | crate |
//! |-------|-------|
//! | source language | [`bedrock2`] |
//! | program logic & trace specs | [`proglogic`] |
//! | compiler | [`compiler`] (bedrock2-compiler) |
//! | ISA | [`riscv`] (riscv-spec) |
//! | hardware framework | [`kami`] |
//! | processors | [`processor`] |
//! | peripherals & network | [`devices`] |
//! | application | [`lightbulb`] |
//! | end-to-end composition | [`integration`] |
//!
//! # Examples
//!
//! The complete end-to-end check — compile the lightbulb stack, boot it on
//! the pipelined processor, drive network traffic, check the trace:
//!
//! ```no_run
//! use lightbulb_system::integration::{end_to_end_lightbulb, SystemConfig};
//! use lightbulb_system::devices::TrafficGen;
//!
//! let mut gen = TrafficGen::new(1);
//! let frames = vec![gen.command(true)];
//! let report = end_to_end_lightbulb(&SystemConfig::default(), &frames, 8_000_000, Some(&[true]))
//!     .expect("the end-to-end property must hold");
//! println!("checked {} MMIO events", report.events_checked);
//! ```
//!
//! Runnable binaries live in `examples/`: `quickstart`, `lightbulb_demo`,
//! `malformed_packet_fuzz`, `differential_compiler`, `pipeline_trace`,
//! `packet_counter`, and `observed_run`.

pub use bedrock2;
pub use bedrock2_compiler as compiler;
pub use devices;
pub use integration;
pub use kami;
pub use lightbulb;
pub use obs;
pub use processor;
pub use proglogic;
pub use riscv_spec as riscv;

//! Concrete-syntax roundtrip at scale: every randomly generated program
//! survives print → parse → print unchanged, and the reparsed program
//! still behaves identically under the interpreter.

use lightbulb_system::bedrock2::display::render_function;
use lightbulb_system::bedrock2::parse::parse_program;
use lightbulb_system::integration::differential::run_source;
use lightbulb_system::integration::progen::ProgGen;
use lightbulb_system::lightbulb::{lightbulb_program, DriverOptions};

fn render(p: &lightbulb_system::bedrock2::Program) -> String {
    p.functions
        .values()
        .map(render_function)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn generated_programs_roundtrip_through_text() {
    for seed in 0..60u64 {
        let prog = ProgGen::new(seed).gen_program();
        let text = render(&prog);
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        // Print again: the second print must be a fixpoint.
        assert_eq!(render(&reparsed), text, "seed {seed}");
    }
}

#[test]
fn reparsed_programs_behave_identically() {
    let mut conclusive = 0;
    for seed in 0..30u64 {
        let prog = ProgGen::new(seed).gen_program();
        let reparsed = parse_program(&render(&prog)).unwrap();
        match (run_source(&prog), run_source(&reparsed)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "seed {seed}");
                conclusive += 1;
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("seed {seed}: outcome changed: {a:?} vs {b:?}"),
        }
    }
    assert!(conclusive >= 20, "{conclusive}/30 conclusive");
}

#[test]
fn the_lightbulb_sources_roundtrip_through_text() {
    for opts in [
        DriverOptions::default(),
        DriverOptions {
            timeouts: false,
            pipelined_spi: true,
        },
    ] {
        let prog = lightbulb_program(opts);
        let text = render(&prog);
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(render(&reparsed), text);
    }
}

//! Register allocation self-verification over random programs: for every
//! generated function, the allocator's result is independently rechecked
//! against a recomputed interference relation (no two simultaneously-live
//! variables share a location) — the paper's phase-2 theorem as a checker,
//! exercised at scale.

use lightbulb_system::compiler::flatten::flatten_program;
use lightbulb_system::compiler::regalloc::{allocate, verify_allocation, Loc};
use lightbulb_system::integration::progen::{GenConfig, ProgGen};
use lightbulb_system::lightbulb::{lightbulb_program, DriverOptions};

#[test]
fn allocations_verify_on_random_programs() {
    for seed in 0..120u64 {
        let prog = ProgGen::new(seed).gen_program();
        let flat = flatten_program(&prog);
        for (name, f) in &flat.functions {
            let alloc = allocate(f);
            verify_allocation(f, &alloc).unwrap_or_else(|e| panic!("seed {seed}, fn {name}: {e}"));
        }
    }
}

#[test]
fn allocations_verify_under_high_pressure() {
    let config = GenConfig {
        stmts_per_fn: 40,
        max_expr_depth: 5,
        max_loop_iters: 6,
        helpers: 2,
    };
    for seed in 500..540u64 {
        let prog = ProgGen::new(seed).with_config(config).gen_program();
        let flat = flatten_program(&prog);
        for (name, f) in &flat.functions {
            let alloc = allocate(f);
            verify_allocation(f, &alloc).unwrap_or_else(|e| panic!("seed {seed}, fn {name}: {e}"));
        }
    }
}

#[test]
fn the_lightbulb_sources_allocate_cleanly() {
    for opts in [
        DriverOptions::default(),
        DriverOptions {
            timeouts: false,
            pipelined_spi: true,
        },
    ] {
        let flat = flatten_program(&lightbulb_program(opts));
        for (name, f) in &flat.functions {
            let alloc = allocate(f);
            verify_allocation(f, &alloc).unwrap_or_else(|e| panic!("{name}: {e}"));
            // The drivers are small enough to fit in registers entirely —
            // a property the cycle counts in EXPERIMENTS.md rely on.
            assert_eq!(
                alloc.nspills, 0,
                "{name} should not spill ({} vars)",
                f.nvars
            );
            assert!(alloc.map.iter().all(|l| matches!(l, Loc::Reg(_))));
        }
    }
}

//! The prefix closure of the end-to-end theorem (§5.9): "this theorem
//! holds at any point during the execution, without reference to any
//! notion of the software having 'completed' a loop iteration." One long
//! run is recorded and the specification must accept *every* prefix —
//! checked at many random cut points, including mid-SPI-transaction ones.

use lightbulb_system::devices::TrafficGen;
use lightbulb_system::integration::SystemConfig;
use lightbulb_system::lightbulb::good_hl_trace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn every_prefix_of_a_long_run_matches() {
    let config = SystemConfig::default();
    let mut gen = TrafficGen::new(97);
    let frames = vec![gen.command(true), gen.command(false)];
    let run = config.run(&frames, 500_000);
    assert!(run.error.is_none());
    let spec = good_hl_trace(config.driver);
    assert!(spec.matches_prefix(&run.events));

    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..60 {
        let cut = rng.random_range(0..=run.events.len());
        assert!(
            spec.matches_prefix(&run.events[..cut]),
            "prefix of length {cut} (of {}) must match",
            run.events.len()
        );
    }
}

#[test]
fn prefix_acceptance_is_monotone_on_system_traces() {
    // Check the theoretical property the checker relies on (binary search
    // in longest_matching_prefix): if a prefix matches, every shorter one
    // does. Violations would indicate a combinator bug.
    let config = SystemConfig::default();
    let mut gen = TrafficGen::new(101);
    let run = config.run(&[gen.command(true)], 300_000);
    let spec = good_hl_trace(config.driver);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..20 {
        let long = rng.random_range(0..=run.events.len());
        let short = rng.random_range(0..=long);
        if spec.matches_prefix(&run.events[..long]) {
            assert!(
                spec.matches_prefix(&run.events[..short]),
                "{short} ≤ {long}"
            );
        }
    }
}

//! Property tests for the trace-predicate combinators (§3.1): algebraic
//! laws, prefix-monotonicity, and agreement with a reference regex
//! matcher on random predicates and traces.

use lightbulb_system::proglogic::trace::{ld, st, TracePred};
use lightbulb_system::riscv::MmioEvent;
use proptest::prelude::*;

/// A tiny alphabet of events so random traces actually match sometimes.
fn arb_event() -> impl Strategy<Value = MmioEvent> {
    (0u32..3, any::<bool>(), 0u32..4).prop_map(|(addr, load, value)| {
        if load {
            MmioEvent::load(addr * 4, value)
        } else {
            MmioEvent::store(addr * 4, value)
        }
    })
}

/// A reference description of a predicate, interpretable both as a
/// [`TracePred`] and as a naive recursive matcher.
#[derive(Clone, Debug)]
enum Rx {
    Eps,
    Ld(u32),
    St(u32),
    Seq(Box<Rx>, Box<Rx>),
    Alt(Box<Rx>, Box<Rx>),
    Star(Box<Rx>),
}

fn arb_rx() -> impl Strategy<Value = Rx> {
    let leaf = prop_oneof![
        Just(Rx::Eps),
        (0u32..3).prop_map(|a| Rx::Ld(a * 4)),
        (0u32..3).prop_map(|a| Rx::St(a * 4)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rx::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rx::Alt(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Rx::Star(Box::new(a))),
        ]
    })
}

fn to_pred(rx: &Rx) -> TracePred {
    match rx {
        Rx::Eps => TracePred::eps(),
        Rx::Ld(a) => ld(*a),
        Rx::St(a) => st(*a),
        Rx::Seq(x, y) => to_pred(x).then(&to_pred(y)),
        Rx::Alt(x, y) => to_pred(x).or(&to_pred(y)),
        Rx::Star(x) => to_pred(x).star(),
    }
}

/// Naive reference matcher (exponential, fine at these sizes).
fn reference_matches(rx: &Rx, t: &[MmioEvent]) -> bool {
    match rx {
        Rx::Eps => t.is_empty(),
        Rx::Ld(a) => {
            t.len() == 1
                && t[0].kind == lightbulb_system::riscv::MmioEventKind::Load
                && t[0].addr == *a
        }
        Rx::St(a) => {
            t.len() == 1
                && t[0].kind == lightbulb_system::riscv::MmioEventKind::Store
                && t[0].addr == *a
        }
        Rx::Seq(x, y) => {
            (0..=t.len()).any(|i| reference_matches(x, &t[..i]) && reference_matches(y, &t[i..]))
        }
        Rx::Alt(x, y) => reference_matches(x, t) || reference_matches(y, t),
        Rx::Star(x) => {
            t.is_empty()
                || (1..=t.len())
                    .any(|i| reference_matches(x, &t[..i]) && reference_matches(rx, &t[i..]))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The combinator matcher agrees with the naive reference semantics.
    #[test]
    fn matches_agrees_with_reference(
        rx in arb_rx(),
        t in proptest::collection::vec(arb_event(), 0..8),
    ) {
        prop_assert_eq!(to_pred(&rx).matches(&t), reference_matches(&rx, &t));
    }

    /// Any full match is also a prefix match, and prefix acceptance is
    /// monotone under truncation.
    #[test]
    fn prefix_laws(
        rx in arb_rx(),
        t in proptest::collection::vec(arb_event(), 0..8),
    ) {
        let p = to_pred(&rx);
        if p.matches(&t) {
            prop_assert!(p.matches_prefix(&t));
        }
        if p.matches_prefix(&t) {
            for k in 0..t.len() {
                prop_assert!(p.matches_prefix(&t[..k]), "truncation to {k} must still match");
            }
        }
    }

    /// `longest_matching_prefix` returns exactly the boundary.
    #[test]
    fn longest_prefix_is_a_boundary(
        rx in arb_rx(),
        t in proptest::collection::vec(arb_event(), 0..8),
    ) {
        let p = to_pred(&rx);
        let k = p.longest_matching_prefix(&t);
        prop_assert!(k <= t.len());
        prop_assert!(p.matches_prefix(&t[..k]));
        if k < t.len() {
            prop_assert!(!p.matches_prefix(&t[..k + 1]));
        }
    }

    /// Algebraic laws: union is commutative and star is idempotent on
    /// membership.
    #[test]
    fn algebraic_laws(
        a in arb_rx(),
        b in arb_rx(),
        t in proptest::collection::vec(arb_event(), 0..6),
    ) {
        let (pa, pb) = (to_pred(&a), to_pred(&b));
        prop_assert_eq!(pa.or(&pb).matches(&t), pb.or(&pa).matches(&t));
        let star = pa.star();
        prop_assert_eq!(star.matches(&t), star.star().matches(&t));
        // ε is a unit for concatenation.
        prop_assert_eq!(
            TracePred::eps().then(&pa).matches(&t),
            pa.matches(&t)
        );
        prop_assert_eq!(pa.then(&TracePred::eps()).matches(&t), pa.matches(&t));
    }

    /// plus = p · p*.
    #[test]
    fn plus_law(a in arb_rx(), t in proptest::collection::vec(arb_event(), 0..6)) {
        let p = to_pred(&a);
        prop_assert_eq!(p.plus().matches(&t), p.then(&p.star()).matches(&t));
    }
}

//! Fault-injection properties: the zero-cost default, seeded determinism,
//! and the fault-sweep harness itself (tentpole checks of the robustness
//! work — see `DESIGN.md` "Deterministic fault injection").

use lightbulb_system::devices::{FaultPlan, TrafficGen};
use lightbulb_system::integration::differential::{
    fault_sweep, fault_sweep_with, resilient_sweep, CheckpointConfig, FaultSweepConfig,
    FaultSweepOptions, RetryPolicy, SweepOptions, SweepReport,
};
use lightbulb_system::integration::{
    build_image, DiffError, ProcessorKind, SweepCheckpoint, SystemConfig, TriageSummary,
};
use obs::Counters;

const BUDGET: u64 = 250_000;

fn frames(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut gen = TrafficGen::new(seed);
    (0..n).map(|i| gen.command(i % 2 == 0)).collect()
}

/// `FaultPlan::none()` must be unobservable: a board built with the empty
/// plan produces a byte-identical MMIO trace to a plain board, on both
/// machine models. This is the trace-level statement of the "zero cost
/// when absent" property the device hot paths rely on.
#[test]
fn empty_fault_plan_is_byte_identical_to_no_fault_plan() {
    for processor in [ProcessorKind::Pipelined, ProcessorKind::SpecMachine] {
        let config = SystemConfig {
            processor,
            ..SystemConfig::default()
        };
        let image = build_image(&config);
        let plain = config.run(&frames(5, 2), BUDGET);
        let faulted = config.run_faulted(&image, &FaultPlan::none(), &frames(5, 2), BUDGET);
        assert_eq!(
            plain.events, faulted.events,
            "{processor:?}: FaultPlan::none() altered the trace"
        );
        assert_eq!(plain.bulb_history, faulted.bulb_history);
    }
}

/// Same seed ⇒ same trace, run-to-run: every fault trigger is keyed on
/// interaction counts, never ticks or wall time.
#[test]
fn seeded_faults_are_deterministic_run_to_run() {
    let config = SystemConfig::default();
    let image = build_image(&config);
    let plan = FaultPlan::from_seed(7);
    let a = config.run_faulted(&image, &plan, &frames(7, 2), BUDGET);
    let b = config.run_faulted(&image, &plan, &frames(7, 2), BUDGET);
    assert_eq!(a.events, b.events, "same seed must replay identically");
    assert!(
        a.report.counters.get("devices.faults.injected") > 0,
        "seed 7 must actually inject something for this test to mean anything"
    );
}

/// The sweep harness end to end on a few seeds: every plan is recoverable
/// (spec satisfaction + replay equality on both models), and the report is
/// invariant under the shard count — including its fault/recovery
/// counters, which are summed per-seed and so merge order-insensitively.
#[test]
fn fault_sweep_smoke_is_clean_and_shard_count_invariant() {
    let cfg = FaultSweepConfig::default();
    let serial = fault_sweep(0..6, 1, &cfg);
    serial.expect_clean("fault sweep smoke (serial)");
    assert_eq!(serial.conclusive, 6);

    let sharded = fault_sweep(0..6, 3, &cfg);
    sharded.expect_clean("fault sweep smoke (sharded)");
    assert_eq!(sharded.shards, 3);

    let strip = |c: &Counters| {
        c.iter()
            .filter(|(k, _)| *k != "core.diff.shards")
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&serial.counters), strip(&sharded.counters));
    assert!(
        serial.counters.get("devices.faults.injected") > 0,
        "six seeds must inject at least one fault: {:?}",
        serial.counters
    );
}

/// `expect_clean` must name both the failing seed and its shard, so a
/// sweep failure in CI reproduces with a one-liner — and when the sweep
/// carried checkpoint/triage context, the message must surface that too:
/// the panic string is the only thing CI shows, so it is the contract.
#[test]
fn expect_clean_names_the_failing_seed_and_shard() {
    let report = SweepReport {
        total: 40,
        conclusive: 39,
        inconclusive: 0,
        failures: vec![(13, DiffError::MachineTimeout)],
        shards: 4,
        start: 0,
        chunk: 10,
        checkpoint_path: Some("/tmp/sweep.cp.json".to_string()),
        triage: vec![TriageSummary {
            seed: 13,
            original_atoms: 9,
            minimal_atoms: 2,
            divergence: "workload stalls after event 41".to_string(),
            artifact: None,
        }],
        ..SweepReport::default()
    };
    assert_eq!(report.shard_of(13), 1);
    let panic = std::panic::catch_unwind(|| report.expect_clean("doomed"))
        .expect_err("a report with failures must panic");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is a formatted string");
    assert!(msg.contains("seed 13"), "message must name the seed: {msg}");
    assert!(
        msg.contains("shard 1/4"),
        "message must name the shard: {msg}"
    );
    assert!(
        msg.contains("13..14"),
        "message must give a one-liner repro range: {msg}"
    );
    assert!(
        msg.contains("shrank 9 -> 2 fault atoms"),
        "message must quote the triage summary: {msg}"
    );
    assert!(
        msg.contains("workload stalls after event 41"),
        "message must name the divergence site: {msg}"
    );
    assert!(
        msg.contains("/tmp/sweep.cp.json"),
        "message must point at the checkpoint: {msg}"
    );
}

/// A panicking seed must not abort the sweep: the panic is caught, the
/// seed recorded, and every other seed still classified. `expect_clean`
/// then fails with the panicking seed named.
#[test]
fn a_panicking_seed_is_isolated_and_reported() {
    let report = resilient_sweep(0..20, 4, &SweepOptions::default(), |seed, _, _| {
        assert!(seed != 13, "planted panic on seed 13");
        Ok(())
    });
    assert_eq!(report.conclusive, 19, "the other seeds must still run");
    assert_eq!(report.panicked.len(), 1);
    assert_eq!(report.panicked[0].0, 13);
    assert!(
        report.panicked[0].1.contains("planted panic"),
        "payload must carry the panic message: {:?}",
        report.panicked[0].1
    );
    assert_eq!(report.counters.get("core.diff.panicked"), 1);
    assert!(!report.is_clean());
    let panic = std::panic::catch_unwind(|| report.expect_clean("doomed"))
        .expect_err("a report with panicked seeds must fail expect_clean");
    let msg = panic.downcast_ref::<String>().expect("formatted payload");
    assert!(msg.contains("seed 13"), "must name the seed: {msg}");
}

/// Transient failures (here: planted `MachineTimeout`s that clear on the
/// second attempt) are retried under the policy and end up conclusive,
/// with the recovery visible in the counters.
#[test]
fn transient_failures_are_retried_and_recover() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let first_attempts = AtomicU64::new(0);
    let opts = SweepOptions {
        retry: RetryPolicy {
            attempts: 3,
            base_backoff_ms: 0,
            backoff_cap_ms: 0,
        },
        ..SweepOptions::default()
    };
    let report = resilient_sweep(0..10, 2, &opts, |seed, attempt, _| {
        if seed % 3 == 0 && attempt == 0 {
            first_attempts.fetch_add(1, Ordering::Relaxed);
            return Err(DiffError::MachineTimeout);
        }
        Ok(())
    });
    report.expect_clean("retried sweep");
    assert_eq!(report.conclusive, 10);
    assert_eq!(first_attempts.load(Ordering::Relaxed), 4, "seeds 0,3,6,9");
    assert_eq!(report.counters.get("core.diff.retried_seeds"), 4);
    assert_eq!(report.counters.get("core.diff.recovered_seeds"), 4);
    assert_eq!(report.counters.get("core.diff.retry_attempts"), 4);
}

/// Hard (non-transient) failures must classify on the first attempt: the
/// retry budget is for budget exhaustion, not for reproducing a real
/// disagreement three times.
#[test]
fn hard_failures_are_not_retried() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let calls = AtomicU64::new(0);
    let opts = SweepOptions {
        retry: RetryPolicy {
            attempts: 3,
            base_backoff_ms: 0,
            backoff_cap_ms: 0,
        },
        ..SweepOptions::default()
    };
    let report = resilient_sweep(5..6, 1, &opts, |_, _, _| {
        calls.fetch_add(1, Ordering::Relaxed);
        Err(DiffError::SpecViolation {
            matched: 1,
            total: 2,
            model: "pipelined",
        })
    });
    assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry on hard failure");
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.counters.get("core.diff.retry_attempts"), 0);
}

/// The resume property, end to end on the real fault-check: cancel a
/// sweep partway (simulating a kill at an arbitrary cursor), resume from
/// its checkpoint, and require the final report to be byte-identical to
/// an uninterrupted run's.
#[test]
fn a_killed_sweep_resumes_to_a_byte_identical_report() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join("lightbulb-resume-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cp_path = dir.join("fault_sweep.cp.json");
    std::fs::remove_file(&cp_path).ok();
    let checkpoint = || CheckpointConfig {
        path: cp_path.clone(),
        every: 1,
        tag: "fault_sweep".to_string(),
    };
    let cfg = FaultSweepConfig::default();

    // Reference: one uninterrupted run.
    let fresh = fault_sweep_with(
        0..6,
        2,
        &cfg,
        &FaultSweepOptions {
            sweep: SweepOptions {
                checkpoint: Some(checkpoint()),
                ..SweepOptions::default()
            },
            ..FaultSweepOptions::default()
        },
    );
    fresh.expect_clean("fresh fault sweep");

    // "Kill" a second run after a few seeds: the check itself flips the
    // cancel flag (the engine checks it at every seed boundary), which is
    // observationally a kill at an arbitrary cursor — except the final
    // forced checkpoint still lands, as it would under a signal handler.
    std::fs::remove_file(&cp_path).ok();
    let cancel = Arc::new(AtomicBool::new(false));
    let started = AtomicU64::new(0);
    let image = build_image(&cfg.system);
    let interrupted = {
        let opts = SweepOptions {
            checkpoint: Some(checkpoint()),
            cancel: Some(Arc::clone(&cancel)),
            ..SweepOptions::default()
        };
        resilient_sweep(0..6, 2, &opts, |seed, _, counters| {
            if started.fetch_add(1, Ordering::Relaxed) >= 2 {
                cancel.store(true, Ordering::Relaxed);
            }
            lightbulb_system::integration::fault_check(seed, &cfg, &image, counters)
        })
    };
    assert!(interrupted.interrupted, "the cancel flag must interrupt");
    assert!(
        interrupted.conclusive < 6,
        "interruption must leave seeds unswept"
    );
    assert!(
        cp_path.exists(),
        "an interrupted sweep must leave a checkpoint"
    );

    // Resume from the on-disk checkpoint and finish the range.
    let resume = SweepCheckpoint::load(&cp_path).expect("checkpoint loads");
    assert!(resume.completed() < 6, "checkpoint must be partial");
    let resumed = fault_sweep_with(
        0..6,
        2,
        &cfg,
        &FaultSweepOptions {
            sweep: SweepOptions {
                checkpoint: Some(checkpoint()),
                resume: Some(resume),
                ..SweepOptions::default()
            },
            ..FaultSweepOptions::default()
        },
    );
    resumed.expect_clean("resumed fault sweep");
    assert_eq!(
        resumed.to_json().render(),
        fresh.to_json().render(),
        "kill-and-resume must reproduce the fresh report byte for byte"
    );
    std::fs::remove_file(&cp_path).ok();
}

/// Resume must refuse a checkpoint from a different sweep: silently
/// resuming under the wrong geometry would fabricate results.
#[test]
fn resume_refuses_a_mismatched_checkpoint() {
    let cp = SweepCheckpoint::fresh("fault_sweep", 0, 100, 4, 25);
    assert!(cp.validate(0, 100, 4, 25, Some("fault_sweep")).is_ok());
    assert!(cp.validate(0, 60, 4, 15, Some("fault_sweep")).is_err());
    assert!(cp.validate(0, 100, 4, 25, Some("compiler_sweep")).is_err());
    let opts = SweepOptions {
        resume: Some(SweepCheckpoint::fresh("", 0, 999, 1, 999)),
        ..SweepOptions::default()
    };
    let panic = std::panic::catch_unwind(|| resilient_sweep(0..4, 2, &opts, |_, _, _| Ok(())))
        .expect_err("mismatched geometry must refuse to resume");
    let msg = panic.downcast_ref::<String>().expect("formatted payload");
    assert!(
        msg.contains("cannot resume"),
        "must explain the refusal: {msg}"
    );
}

/// The triage path end to end on the real stack: a hand-built
/// unrecoverable plan (bring-up junk far beyond the driver's retry
/// budget, plus independent noise atoms) fails the liveness-mode check;
/// triage must shrink it to a strictly smaller plan that still fails and
/// name the divergence site.
#[test]
fn an_unrecoverable_plan_shrinks_to_a_smaller_failing_plan() {
    let cfg = FaultSweepConfig {
        require_done: true,
        ..FaultSweepConfig::default()
    };
    let image = build_image(&cfg.system);
    // The culprit: BYTE_TEST junk for 10_000 reads, far past the driver's
    // bring-up budget, so initialization never succeeds and no frame is
    // ever delivered. The noise: faults triage should strip.
    let plan = FaultPlan {
        byte_test_junk_reads: 10_000,
        spurious_rx_reads: vec![40, 90],
        wire_garbage: vec![(25, 0x5A)],
        ..FaultPlan::none()
    };
    let report = lightbulb_system::integration::triage_plan(&plan, &cfg, &image)
        .expect("the planted plan must fail and therefore triage");
    let original = report.original.atoms().len();
    let minimal = report.minimal.atoms().len();
    assert!(
        minimal < original,
        "triage must strip noise: {minimal} of {original} atoms left"
    );
    assert!(minimal >= 1, "the culprit atom must survive");
    assert!(
        report.minimal.byte_test_junk_reads == 10_000,
        "the culprit (bring-up junk) must be in the minimal plan: {:?}",
        report.minimal
    );
    assert!(
        matches!(report.error, DiffError::WorkloadIncomplete { .. }),
        "liveness mode must classify the stall: {:?}",
        report.error
    );
    assert!(
        !report.site.description.is_empty(),
        "the divergence site must be named"
    );
    // The artifact is a complete, self-describing JSON document whose
    // minimal plan round-trips for --replay-plan.
    let doc = obs::json::parse(&report.to_json().render()).expect("artifact is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(obs::json::Value::as_str),
        Some("triage-report/v1")
    );
    let replayed = FaultPlan::from_json(doc.get("minimal").expect("minimal plan present"))
        .expect("minimal plan parses back");
    assert_eq!(replayed, report.minimal);
}

//! Fault-injection properties: the zero-cost default, seeded determinism,
//! and the fault-sweep harness itself (tentpole checks of the robustness
//! work — see `DESIGN.md` "Deterministic fault injection").

use lightbulb_system::devices::{FaultPlan, TrafficGen};
use lightbulb_system::integration::differential::{fault_sweep, FaultSweepConfig, SweepReport};
use lightbulb_system::integration::{build_image, DiffError, ProcessorKind, SystemConfig};
use obs::Counters;

const BUDGET: u64 = 250_000;

fn frames(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut gen = TrafficGen::new(seed);
    (0..n).map(|i| gen.command(i % 2 == 0)).collect()
}

/// `FaultPlan::none()` must be unobservable: a board built with the empty
/// plan produces a byte-identical MMIO trace to a plain board, on both
/// machine models. This is the trace-level statement of the "zero cost
/// when absent" property the device hot paths rely on.
#[test]
fn empty_fault_plan_is_byte_identical_to_no_fault_plan() {
    for processor in [ProcessorKind::Pipelined, ProcessorKind::SpecMachine] {
        let config = SystemConfig {
            processor,
            ..SystemConfig::default()
        };
        let image = build_image(&config);
        let plain = config.run(&frames(5, 2), BUDGET);
        let faulted = config.run_faulted(&image, &FaultPlan::none(), &frames(5, 2), BUDGET);
        assert_eq!(
            plain.events, faulted.events,
            "{processor:?}: FaultPlan::none() altered the trace"
        );
        assert_eq!(plain.bulb_history, faulted.bulb_history);
    }
}

/// Same seed ⇒ same trace, run-to-run: every fault trigger is keyed on
/// interaction counts, never ticks or wall time.
#[test]
fn seeded_faults_are_deterministic_run_to_run() {
    let config = SystemConfig::default();
    let image = build_image(&config);
    let plan = FaultPlan::from_seed(7);
    let a = config.run_faulted(&image, &plan, &frames(7, 2), BUDGET);
    let b = config.run_faulted(&image, &plan, &frames(7, 2), BUDGET);
    assert_eq!(a.events, b.events, "same seed must replay identically");
    assert!(
        a.report.counters.get("devices.faults.injected") > 0,
        "seed 7 must actually inject something for this test to mean anything"
    );
}

/// The sweep harness end to end on a few seeds: every plan is recoverable
/// (spec satisfaction + replay equality on both models), and the report is
/// invariant under the shard count — including its fault/recovery
/// counters, which are summed per-seed and so merge order-insensitively.
#[test]
fn fault_sweep_smoke_is_clean_and_shard_count_invariant() {
    let cfg = FaultSweepConfig::default();
    let serial = fault_sweep(0..6, 1, &cfg);
    serial.expect_clean("fault sweep smoke (serial)");
    assert_eq!(serial.conclusive, 6);

    let sharded = fault_sweep(0..6, 3, &cfg);
    sharded.expect_clean("fault sweep smoke (sharded)");
    assert_eq!(sharded.shards, 3);

    let strip = |c: &Counters| {
        c.iter()
            .filter(|(k, _)| *k != "core.diff.shards")
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&serial.counters), strip(&sharded.counters));
    assert!(
        serial.counters.get("devices.faults.injected") > 0,
        "six seeds must inject at least one fault: {:?}",
        serial.counters
    );
}

/// `expect_clean` must name both the failing seed and its shard, so a
/// sweep failure in CI reproduces with a one-liner.
#[test]
fn expect_clean_names_the_failing_seed_and_shard() {
    let report = SweepReport {
        total: 40,
        conclusive: 39,
        inconclusive: 0,
        failures: vec![(13, DiffError::MachineTimeout)],
        counters: Counters::new(),
        shards: 4,
        start: 0,
        chunk: 10,
    };
    assert_eq!(report.shard_of(13), 1);
    let panic = std::panic::catch_unwind(|| report.expect_clean("doomed"))
        .expect_err("a report with failures must panic");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is a formatted string");
    assert!(msg.contains("seed 13"), "message must name the seed: {msg}");
    assert!(
        msg.contains("shard 1/4"),
        "message must name the shard: {msg}"
    );
    assert!(
        msg.contains("13..14"),
        "message must give a one-liner repro range: {msg}"
    );
}

//! Cross-crate integration tests: the end-to-end theorem (§5.9) checked
//! over the full configuration grid.

use lightbulb_system::devices::workload::{Malformation, TrafficGen};
use lightbulb_system::integration::{
    end_to_end_lightbulb, EndToEndError, ProcessorKind, SystemConfig,
};
use lightbulb_system::lightbulb::DriverOptions;

const BUDGET: u64 = 600_000;

#[test]
fn end_to_end_default_configuration() {
    let mut gen = TrafficGen::new(1);
    let frames = vec![gen.command(true), gen.command(false), gen.command(true)];
    let report = end_to_end_lightbulb(
        &SystemConfig::default(),
        &frames,
        BUDGET,
        Some(&[true, false, true]),
    )
    .unwrap();
    assert!(report.run.bulb_on);
    assert!(report.events_checked > 1000);
}

#[test]
fn end_to_end_on_every_processor_model() {
    let mut gen = TrafficGen::new(2);
    let frames = vec![gen.command(true)];
    for processor in [
        ProcessorKind::SpecMachine,
        ProcessorKind::SingleCycle,
        ProcessorKind::Pipelined,
    ] {
        let config = SystemConfig {
            processor,
            ..SystemConfig::default()
        };
        let report = end_to_end_lightbulb(&config, &frames, BUDGET, Some(&[true]))
            .unwrap_or_else(|e| panic!("{processor:?}: {e}"));
        assert!(report.run.bulb_on, "{processor:?}");
    }
}

#[test]
fn end_to_end_with_the_optimizing_compiler() {
    // The gcc-like baseline must satisfy the same specification — the spec
    // constrains I/O, not code shape.
    let mut gen = TrafficGen::new(3);
    let config = SystemConfig {
        optimize: true,
        ..SystemConfig::default()
    };
    let report =
        end_to_end_lightbulb(&config, &[gen.command(true)], BUDGET, Some(&[true])).unwrap();
    assert!(report.run.bulb_on);
}

#[test]
fn end_to_end_with_the_pipelined_spi_driver() {
    let mut gen = TrafficGen::new(4);
    let config = SystemConfig {
        driver: DriverOptions {
            timeouts: true,
            pipelined_spi: true,
        },
        ..SystemConfig::default()
    };
    let report =
        end_to_end_lightbulb(&config, &[gen.command(true)], BUDGET, Some(&[true])).unwrap();
    assert!(report.run.bulb_on);
}

#[test]
fn end_to_end_under_pure_attack_traffic() {
    let mut gen = TrafficGen::new(5);
    let frames: Vec<Vec<u8>> = Malformation::ALL
        .iter()
        .map(|k| gen.malformed(*k))
        .collect();
    let report =
        end_to_end_lightbulb(&SystemConfig::default(), &frames, BUDGET * 2, Some(&[])).unwrap();
    assert!(!report.run.bulb_on);
    assert!(report.run.bulb_history.is_empty(), "no GPIO writes at all");
}

#[test]
fn end_to_end_under_mixed_traffic_tracks_only_valid_commands() {
    let mut gen = TrafficGen::new(6);
    let (frames, expected) = gen.mixed(6);
    end_to_end_lightbulb(
        &SystemConfig::default(),
        &frames,
        BUDGET * 3,
        Some(&expected),
    )
    .unwrap();
}

#[test]
fn the_checker_rejects_wrong_expectations() {
    // Negative control: demanding the wrong actuation sequence must fail
    // with WrongActuation, not pass silently.
    let mut gen = TrafficGen::new(7);
    let err = end_to_end_lightbulb(
        &SystemConfig::default(),
        &[gen.command(true)],
        BUDGET,
        Some(&[false]),
    );
    assert!(matches!(err, Err(EndToEndError::WrongActuation { .. })));
}

#[test]
fn spec_machine_certifies_the_software_contract_for_the_whole_boot() {
    // Running on the spec machine checks alignment, XAddrs, and MMIO-range
    // discipline at every single instruction of the real application.
    let config = SystemConfig {
        processor: ProcessorKind::SpecMachine,
        ..SystemConfig::default()
    };
    let run = config.run(&[], 400_000);
    assert!(run.error.is_none(), "{:?}", run.error);
}

//! Processor refinement (§5.7): every pipelined run is a legal
//! single-cycle run, checked over random compiled programs and over the
//! lightbulb system itself.

use lightbulb_system::compiler::{compile, CompileOptions, MmioExtCompiler};
use lightbulb_system::integration::debug_dev::DebugDevice;
use lightbulb_system::integration::progen::ProgGen;
use lightbulb_system::integration::{build_image, SystemConfig};
use lightbulb_system::processor::{check_refinement, PipelineConfig};

const RAM: u32 = 0x1_0000;

#[test]
fn random_compiled_programs_refine() {
    let mut checked = 0;
    for seed in 0..40u64 {
        let prog = ProgGen::new(seed).gen_program();
        let Ok(image) = compile(&prog, &MmioExtCompiler, &CompileOptions::default()) else {
            continue;
        };
        match check_refinement(
            &image.bytes(),
            RAM,
            DebugDevice::new(),
            DebugDevice::claims,
            PipelineConfig::default(),
            20_000_000,
        ) {
            Ok(report) => {
                assert!(report.impl_cycles >= report.spec_cycles);
                checked += 1;
            }
            Err(d) => panic!("seed {seed}: refinement violated: {d:?}\n{prog}"),
        }
    }
    assert!(checked >= 30, "only {checked}/40 programs checked");
}

#[test]
fn refinement_holds_without_a_btb_too() {
    for seed in 100..110u64 {
        let prog = ProgGen::new(seed).gen_program();
        let Ok(image) = compile(&prog, &MmioExtCompiler, &CompileOptions::default()) else {
            continue;
        };
        check_refinement(
            &image.bytes(),
            RAM,
            DebugDevice::new(),
            DebugDevice::claims,
            PipelineConfig {
                btb_bits: None,
                ..PipelineConfig::default()
            },
            20_000_000,
        )
        .unwrap_or_else(|d| panic!("seed {seed}: {d:?}"));
    }
}

#[test]
fn the_lightbulb_system_itself_refines() {
    // The real workload: boot the full stack and check the (non-halting)
    // pipelined run against the spec core by replay.
    use lightbulb_system::devices::{Board, SpiConfig, TrafficGen};

    let image = build_image(&SystemConfig::default());
    let mut board = Board::new(SpiConfig::default());
    let mut gen = TrafficGen::new(8);
    board.inject_frame(&gen.command(true));

    let report = check_refinement(
        &image.bytes(),
        RAM,
        board,
        Board::claims,
        PipelineConfig::default(),
        2_000_000,
    )
    .expect("the shipping system must refine its spec core");
    assert!(report.events > 500, "boot plus one packet produce real I/O");
}

//! Compiler-correctness differential sweep: random programs through every
//! compiler configuration and both machine layers. This is the test-suite
//! analogue of the paper's compiler theorem and §5.8 consistency proof.

use lightbulb_system::integration::differential::{
    check_compiler_differential, check_isa_consistency, check_optimizer_differential,
    check_spill_all_differential, default_shards, parallel_sweep, parallel_sweep_with, DiffError,
};
use lightbulb_system::integration::progen::{GenConfig, ProgGen};

fn sweep(
    name: &str,
    seeds: std::ops::Range<u64>,
    check: impl Fn(&bedrock2::Program) -> Result<(), DiffError> + Sync,
) {
    let r = parallel_sweep(seeds, default_shards(), check);
    r.expect_clean(name);
    assert!(
        r.conclusive * 2 >= r.total,
        "{name}: only {}/{} runs were conclusive",
        r.conclusive,
        r.total
    );
}

#[test]
fn naive_compiler_agrees_with_the_interpreter() {
    sweep("naive", 0..80, |p| check_compiler_differential(p, false));
}

#[test]
fn optimizing_compiler_agrees_with_the_interpreter() {
    sweep("optimizing", 1000..1080, check_optimizer_differential);
}

#[test]
fn spill_everything_ablation_is_still_correct() {
    sweep("spill-all", 4000..4060, check_spill_all_differential);
}

#[test]
fn single_cycle_core_agrees_with_the_isa_spec() {
    sweep("isa-consistency", 2000..2060, |p| {
        check_isa_consistency(p, false)
    });
}

#[test]
fn bigger_programs_also_agree() {
    let config = GenConfig {
        stmts_per_fn: 30,
        max_expr_depth: 4,
        max_loop_iters: 12,
        helpers: 3,
    };
    let r = parallel_sweep_with(
        3000..3020,
        default_shards(),
        |seed| ProgGen::new(seed).with_config(config).gen_program(),
        |p| check_compiler_differential(p, false),
    );
    r.expect_clean("bigger-programs");
    assert!(r.conclusive >= 8, "{}/20 conclusive", r.conclusive);
}

#[test]
fn the_lightbulb_sources_compile_and_agree_at_every_layer() {
    // The flagship program through the flattening differential: the
    // interpreter and the FlatImp interpreter agree on a full
    // init-plus-loop run. (The machine-level agreement is checked by the
    // end_to_end tests, which run on all three machines.)
    use bedrock2::semantics::Interp;
    use lightbulb_system::devices::{Board, TrafficGen};
    use lightbulb_system::lightbulb::{lightbulb_program, DriverOptions, MmioBridge};
    use lightbulb_system::riscv::Memory;

    let prog = lightbulb_program(DriverOptions::default());
    let flat = lightbulb_system::compiler::flatten::flatten_program(&prog);

    let mut gen = TrafficGen::new(99);
    let frame = gen.command(true);

    let mut src = Interp::new(
        &prog,
        Memory::with_size(0x1_0000),
        MmioBridge::new(Board::default()),
    );
    src.ext.dev.inject_frame(&frame);
    src.call("lightbulb_init", &[]).unwrap();
    src.call("lightbulb_loop", &[]).unwrap();

    let mut fi = lightbulb_system::compiler::flatimp::FlatInterp::new(
        &flat,
        Memory::with_size(0x1_0000),
        MmioBridge::new(Board::default()),
    );
    fi.ext.dev.inject_frame(&frame);
    fi.call("lightbulb_init", &[]).unwrap();
    fi.call("lightbulb_loop", &[]).unwrap();

    assert_eq!(
        src.ext.events, fi.ext.events,
        "source and FlatImp I/O traces"
    );
    assert!(fi.ext.dev.lightbulb_on());
}

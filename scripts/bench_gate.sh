#!/usr/bin/env bash
# CI perf-regression gate.
#
# Compares freshly generated bench records against the committed baselines
# and fails on regression:
#
#   * BENCH_verif_perf.json — the obligation-cache warm/cold speedup must
#     stay >= 2x (the incremental-verification contract) and must not fall
#     more than the tolerance below the committed baseline's speedup; the
#     warm run must re-prove nothing and every corpus obligation must
#     still prove.
#   * BENCH_spec_throughput.json — the decode-cache speedup (cached vs
#     uncached spec core, a machine-independent ratio) must not fall more
#     than the tolerance below the baseline's.
#
# Absolute seconds are deliberately NOT gated by default — they measure
# the runner, not the code; the ratios above move only when the code does.
#
# Usage: scripts/bench_gate.sh [FRESH_VERIF_PERF FRESH_SPEC_THROUGHPUT]
#   defaults: /tmp/fresh_verif_perf.json /tmp/fresh_spec_throughput.json
#   baselines: the committed BENCH_*.json at the repo root
#   tolerance: BENCH_GATE_TOL (fraction, default 0.25)
#
# Override: a failing gate is accepted by committing the fresh records as
# the new baselines, or skipped once with BENCH_GATE_SKIP=1.
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH_VERIF="${1:-/tmp/fresh_verif_perf.json}"
FRESH_SPEC="${2:-/tmp/fresh_spec_throughput.json}"
TOL="${BENCH_GATE_TOL:-0.25}"

if [ "${BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench_gate: BENCH_GATE_SKIP=1 — gate skipped"
  exit 0
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_gate: python3 unavailable — gate skipped"
  exit 0
fi

python3 - "$FRESH_VERIF" "$FRESH_SPEC" "$TOL" <<'EOF'
import json
import os
import sys

fresh_verif_path, fresh_spec_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
failures = []


def load(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


# --- verif_perf: the incremental engine's speedup trajectory.
fresh = load(fresh_verif_path)
base = load("BENCH_verif_perf.json")
if fresh is None:
    failures.append(f"verif_perf: fresh record {fresh_verif_path} missing "
                    "(run: cargo run --release -p bench --bin verif_perf -- --json)")
else:
    eng = fresh["data"].get("engine")
    if eng is None:
        failures.append("verif_perf: fresh record has no engine section")
    else:
        floor = 2.0
        base_eng = base["data"].get("engine") if base else None
        if base_eng and base_eng.get("warm_speedup", 0) > 0:
            # The warm run is sub-millisecond, so its timing is the
            # noisiest number in the record: give the speedup ratio twice
            # the usual headroom before calling a regression.
            floor = max(floor, base_eng["warm_speedup"] * (1 - 2 * tol))
        speedup = eng["warm_speedup"]
        if speedup < floor:
            failures.append(
                f"verif_perf: warm-cache speedup {speedup:.1f}x is below the "
                f"floor {floor:.1f}x (baseline {base_eng['warm_speedup']:.1f}x, "
                f"tolerance {tol:.0%})" if base_eng else
                f"verif_perf: warm-cache speedup {speedup:.1f}x is below the 2x contract")
        if eng["warm"]["misses"] != 0:
            failures.append(
                f"verif_perf: warm run re-proved {eng['warm']['misses']} obligations "
                "(the cache stopped answering)")
        if eng["proved"] != eng["obligations"]:
            failures.append(
                f"verif_perf: only {eng['proved']} of {eng['obligations']} corpus "
                "obligations proved (the solver regressed)")
        if not failures:
            print(f"bench_gate: verif_perf ok — warm speedup {speedup:.1f}x "
                  f"(floor {floor:.1f}x), {eng['proved']}/{eng['obligations']} proved")

# --- spec_throughput: the decode-cache speedup ratio.
def cache_ratio(doc):
    cores = doc["data"]["cores"]
    cached = next(c for c in cores
                  if "cached" in c["config"] and "uncached" not in c["config"])
    uncached = next(c for c in cores if "uncached" in c["config"])
    return cached["steps_per_sec"] / uncached["steps_per_sec"]


fresh = load(fresh_spec_path)
base = load("BENCH_spec_throughput.json")
if fresh is None:
    failures.append(f"spec_throughput: fresh record {fresh_spec_path} missing "
                    "(run: cargo run --release -p bench --bin spec_throughput -- --json)")
elif base is not None:
    fresh_ratio, base_ratio = cache_ratio(fresh), cache_ratio(base)
    floor = base_ratio * (1 - tol)
    if fresh_ratio < floor:
        failures.append(
            f"spec_throughput: decode-cache speedup {fresh_ratio:.2f}x fell below "
            f"{floor:.2f}x (baseline {base_ratio:.2f}x, tolerance {tol:.0%})")
    else:
        print(f"bench_gate: spec_throughput ok — decode-cache speedup "
              f"{fresh_ratio:.2f}x (baseline {base_ratio:.2f}x)")

if failures:
    print()
    for f in failures:
        print(f"bench_gate FAIL: {f}")
    print()
    print("bench_gate: if the new numbers are intended, commit the fresh records as "
          "the new baselines (cp the fresh *.json over BENCH_*.json); to skip this "
          "gate once, rerun with BENCH_GATE_SKIP=1.")
    sys.exit(1)

print("bench_gate: no perf regressions")
EOF

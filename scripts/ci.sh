#!/usr/bin/env bash
# Full check pipeline for the lightbulb-system workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (release) =="
cargo test --workspace --release

echo "== docs =="
cargo doc --workspace --no-deps

echo "== examples =="
for e in quickstart lightbulb_demo malformed_packet_fuzz differential_compiler pipeline_trace packet_counter; do
  echo "-- $e"
  cargo run --release --example "$e" >/dev/null
done

echo "== evaluation tables =="
for b in table1 table2 table3 table4 fig_perf verif_perf; do
  echo "-- $b"
  cargo run --release -p bench --bin "$b" >/dev/null
done

echo "ALL CHECKS PASSED"

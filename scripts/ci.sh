#!/usr/bin/env bash
# Full check pipeline for the lightbulb-system workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (release) =="
cargo test --workspace --release

echo "== docs =="
cargo doc --workspace --no-deps

echo "== examples =="
for e in quickstart lightbulb_demo malformed_packet_fuzz differential_compiler pipeline_trace packet_counter observed_run; do
  echo "-- $e"
  cargo run --release --example "$e" >/dev/null
done

echo "== evaluation tables =="
for b in table1 table2 table3 table4; do
  echo "-- $b"
  cargo run --release -p bench --bin "$b" >/dev/null
done

echo "== performance bins (wall clock) =="
for b in fig_perf verif_perf spec_throughput; do
  start=$(date +%s.%N)
  cargo run --release -p bench --bin "$b" >/dev/null
  end=$(date +%s.%N)
  echo "-- $b: $(echo "$end $start" | awk '{printf "%.2f", $1 - $2}') s"
done

echo "== fault-sweep smoke (wall clock) =="
# Bounded version of the full 1000-seed sweep (BENCH_fault_sweep.json):
# every seeded fault plan must stay recoverable on both machine models,
# and the report must be shard-count invariant (the binary self-checks).
# Checkpointing is on so the resume path is exercised under real load;
# a green sweep seals the checkpoint as fully-complete.
start=$(date +%s.%N)
cargo run --release -p bench --bin fault_sweep -- --seeds 96 --checkpoint /tmp/fault_sweep.cp.json --checkpoint-every 16
end=$(date +%s.%N)
echo "-- fault_sweep --seeds 96: $(echo "$end $start" | awk '{printf "%.2f", $1 - $2}') s"

echo "== fault-sweep triage demo =="
# A deliberately unrecoverable plan (bring-up junk past the driver's
# retry budget, buried in noise) must fail, shrink to a strictly smaller
# 1-minimal plan, name its divergence site, write the triage artifact,
# and reproduce from it — the whole red-sweep workflow, kept working by
# running it on every CI pass.
cargo run --release -p bench --bin fault_sweep -- --triage-demo
test -s TRIAGE_fault_sweep_demo.json
echo "-- triage demo: shrink + replay passed, artifact written"

echo "== bench --json =="
# emit_json re-parses its own output before printing, so a successful run
# already proves the document is valid; the python pass is an independent
# parser double-checking the same bytes when one is available.
cargo run --release -p bench --bin table1 -- --json > /tmp/bench_table1.json
test -s /tmp/bench_table1.json
# Machine-readable sweep record. The committed BENCH_fault_sweep.json is
# the recorded full 1000-seed run; this smoke only proves the --json path
# still emits a valid record, so park the recorded artifact and put it
# back afterwards instead of letting a 48-seed record replace it.
if [ -f BENCH_fault_sweep.json ]; then
  cp BENCH_fault_sweep.json /tmp/BENCH_fault_sweep.recorded.json
fi
cargo run --release -p bench --bin fault_sweep -- --seeds 48 --json > /tmp/bench_fault_sweep.json
test -s /tmp/bench_fault_sweep.json
test -s BENCH_fault_sweep.json
if [ -f /tmp/BENCH_fault_sweep.recorded.json ]; then
  mv /tmp/BENCH_fault_sweep.recorded.json BENCH_fault_sweep.json
fi
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool < /tmp/bench_table1.json > /dev/null
  echo "-- BENCH_table1.json parses (python3)"
fi

echo "ALL CHECKS PASSED"

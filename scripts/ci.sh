#!/usr/bin/env bash
# Full check pipeline for the lightbulb-system workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (release) =="
cargo test --workspace --release

echo "== docs =="
cargo doc --workspace --no-deps

echo "== examples =="
for e in quickstart lightbulb_demo malformed_packet_fuzz differential_compiler pipeline_trace packet_counter observed_run; do
  echo "-- $e"
  cargo run --release --example "$e" >/dev/null
done

echo "== evaluation tables =="
for b in table1 table2 table3 table4; do
  echo "-- $b"
  cargo run --release -p bench --bin "$b" >/dev/null
done

echo "== performance bins (wall clock) =="
for b in fig_perf verif_perf spec_throughput; do
  start=$(date +%s.%N)
  cargo run --release -p bench --bin "$b" >/dev/null
  end=$(date +%s.%N)
  echo "-- $b: $(echo "$end $start" | awk '{printf "%.2f", $1 - $2}') s"
done

echo "== fault-sweep smoke (wall clock) =="
# Bounded version of the full 1000-seed sweep (BENCH_fault_sweep.json):
# every seeded fault plan must stay recoverable on both machine models,
# and the report must be shard-count invariant (the binary self-checks).
start=$(date +%s.%N)
cargo run --release -p bench --bin fault_sweep -- --seeds 96
end=$(date +%s.%N)
echo "-- fault_sweep --seeds 96: $(echo "$end $start" | awk '{printf "%.2f", $1 - $2}') s"

echo "== bench --json =="
# emit_json re-parses its own output before printing, so a successful run
# already proves the document is valid; the python pass is an independent
# parser double-checking the same bytes when one is available.
cargo run --release -p bench --bin table1 -- --json > /tmp/bench_table1.json
test -s /tmp/bench_table1.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool < /tmp/bench_table1.json > /dev/null
  echo "-- BENCH_table1.json parses (python3)"
fi

echo "ALL CHECKS PASSED"

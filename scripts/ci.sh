#!/usr/bin/env bash
# Check pipeline for the lightbulb-system workspace.
#
#   scripts/ci.sh          — the fast PR lane: clippy, tests, docs,
#                            examples, tables, budgeted perf bins, the
#                            bounded fault-sweep smoke, the warm-cache
#                            verification smoke, and the perf-regression
#                            gate.
#   scripts/ci.sh --deep   — everything above plus the nightly deep lane:
#                            the full 1000-seed fault sweep and a
#                            cold-cache verif_perf recording.
set -euo pipefail
cd "$(dirname "$0")/.."

DEEP=0
if [ "${1:-}" = "--deep" ]; then
  DEEP=1
fi

# Wall-clock budgets (seconds) for the performance bins. These are
# enforced, not advisory: a bin blowing through its budget fails the run.
# They are sized for an order-of-magnitude regression (a slow CI runner
# fits comfortably; an accidentally quadratic check does not) — the
# fine-grained regression gate is scripts/bench_gate.sh. CI_BUDGET_MULT
# scales all budgets for unusually slow machines.
BUDGET_MULT="${CI_BUDGET_MULT:-1}"

# run_budgeted NAME BUDGET_SECONDS CMD... — runs CMD, prints its wall
# clock, and fails if it exceeded BUDGET_SECONDS * CI_BUDGET_MULT. The
# report goes to stderr so callers can redirect CMD's stdout freely.
run_budgeted() {
  local name="$1" budget="$2"
  shift 2
  local start end elapsed
  start=$(date +%s.%N)
  "$@"
  end=$(date +%s.%N)
  elapsed=$(echo "$end $start" | awk '{printf "%.2f", $1 - $2}')
  if echo "$elapsed $budget $BUDGET_MULT" | awk '{exit !($1 > $2 * $3)}'; then
    echo "-- $name: ${elapsed} s — OVER BUDGET (${budget} s × ${BUDGET_MULT})" >&2
    return 1
  fi
  echo "-- $name: ${elapsed} s (budget ${budget} s)" >&2
}

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (release) =="
cargo test --workspace --release

echo "== docs =="
cargo doc --workspace --no-deps

echo "== examples =="
for e in quickstart lightbulb_demo malformed_packet_fuzz differential_compiler pipeline_trace packet_counter observed_run; do
  echo "-- $e"
  cargo run --release --example "$e" >/dev/null
done

echo "== evaluation tables =="
for b in table1 table2 table3 table4; do
  echo "-- $b"
  cargo run --release -p bench --bin "$b" >/dev/null
done

echo "== performance bins (budgeted wall clock) =="
run_budgeted fig_perf 180 cargo run --release -p bench --bin fig_perf >/dev/null
run_budgeted verif_perf 120 cargo run --release -p bench --bin verif_perf >/dev/null
run_budgeted spec_throughput 120 cargo run --release -p bench --bin spec_throughput >/dev/null

echo "== fault-sweep smoke (budgeted wall clock) =="
# Bounded version of the full 1000-seed sweep (BENCH_fault_sweep.json):
# every seeded fault plan must stay recoverable on both machine models,
# and the report must be shard-count invariant (the binary self-checks).
# Checkpointing is on so the resume path is exercised under real load;
# a green sweep seals the checkpoint as fully-complete.
run_budgeted "fault_sweep --seeds 96" 300 \
  cargo run --release -p bench --bin fault_sweep -- --seeds 96 --checkpoint /tmp/fault_sweep.cp.json --checkpoint-every 16

echo "== fault-sweep triage demo =="
# A deliberately unrecoverable plan (bring-up junk past the driver's
# retry budget, buried in noise) must fail, shrink to a strictly smaller
# 1-minimal plan, name its divergence site, write the triage artifact,
# and reproduce from it — the whole red-sweep workflow, kept working by
# running it on every CI pass.
run_budgeted "triage demo" 120 \
  cargo run --release -p bench --bin fault_sweep -- --triage-demo
test -s TRIAGE_fault_sweep_demo.json
echo "-- triage demo: shrink + replay passed, artifact written"

echo "== verification cache smoke (warm) =="
# Cold run populates the persistent verif-cache/v1 store; the warm run
# must answer every obligation from it. `--stable` keeps both runs from
# touching the committed BENCH_verif_perf.json.
rm -f /tmp/verif-cache.json
cargo run --release -p bench --bin verif_perf -- \
  --engine-only --json --stable --cache /tmp/verif-cache.json > /tmp/verif_smoke_cold.json
cargo run --release -p bench --bin verif_perf -- \
  --engine-only --json --stable --cache /tmp/verif-cache.json > /tmp/verif_smoke_warm.json
hits=$(sed -n 's/.*"cold":{"seconds":[^,]*,"hits":\([0-9]*\).*/\1/p' /tmp/verif_smoke_warm.json)
misses=$(sed -n 's/.*"cold":{"seconds":[^,]*,"hits":[0-9]*,"misses":\([0-9]*\).*/\1/p' /tmp/verif_smoke_warm.json)
test -n "$hits" && test -n "$misses"
rate=$(echo "$hits $misses" | awk '{printf "%.1f", 100 * $1 / ($1 + $2)}')
echo "-- verif smoke cache hit rate: ${rate}% (${hits} hits, ${misses} misses)"
if [ "$misses" != "0" ]; then
  echo "-- verif smoke: warm run re-proved ${misses} obligations — the persistent cache is not answering"
  exit 1
fi

echo "== bench --json =="
# emit_json re-parses its own output before printing, so a successful run
# already proves the document is valid; the python pass is an independent
# parser double-checking the same bytes when one is available.
cargo run --release -p bench --bin table1 -- --json > /tmp/bench_table1.json
test -s /tmp/bench_table1.json
# Machine-readable sweep record. The committed BENCH_fault_sweep.json is
# the recorded full 1000-seed run; this smoke only proves the --json path
# still emits a valid record, so park the recorded artifact and put it
# back afterwards instead of letting a 48-seed record replace it.
if [ -f BENCH_fault_sweep.json ]; then
  cp BENCH_fault_sweep.json /tmp/BENCH_fault_sweep.recorded.json
fi
cargo run --release -p bench --bin fault_sweep -- --seeds 48 --json > /tmp/bench_fault_sweep.json
test -s /tmp/bench_fault_sweep.json
test -s BENCH_fault_sweep.json
if [ -f /tmp/BENCH_fault_sweep.recorded.json ]; then
  mv /tmp/BENCH_fault_sweep.recorded.json BENCH_fault_sweep.json
fi
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool < /tmp/bench_table1.json > /dev/null
  echo "-- BENCH_table1.json parses (python3)"
fi

echo "== perf-regression gate =="
# Generate fresh records without clobbering the committed baselines
# (emit_json writes BENCH_*.json in place, so park and restore them),
# then compare fresh against baseline ±tolerance.
for f in BENCH_verif_perf.json BENCH_spec_throughput.json; do
  if [ -f "$f" ]; then cp "$f" "/tmp/$f.recorded"; fi
done
cargo run --release -p bench --bin verif_perf -- --json > /tmp/fresh_verif_perf.json
cargo run --release -p bench --bin spec_throughput -- --json > /tmp/fresh_spec_throughput.json
for f in BENCH_verif_perf.json BENCH_spec_throughput.json; do
  if [ -f "/tmp/$f.recorded" ]; then mv "/tmp/$f.recorded" "$f"; fi
done
scripts/bench_gate.sh /tmp/fresh_verif_perf.json /tmp/fresh_spec_throughput.json

if [ "$DEEP" = "1" ]; then
  echo "== deep: full 1000-seed fault sweep =="
  # Regenerates BENCH_fault_sweep.json in place — the nightly workflow
  # uploads it as an artifact so drift from the committed record is
  # visible without committing from CI.
  run_budgeted "fault_sweep --seeds 1000" 3600 \
    cargo run --release -p bench --bin fault_sweep -- --seeds 1000 --json > /tmp/bench_fault_sweep_deep.json
  test -s /tmp/bench_fault_sweep_deep.json

  echo "== deep: cold-cache verif_perf =="
  # A from-scratch proving run (no persistent store, full corpus + system
  # checks) — the number the warm-cache PR smoke is measured against.
  rm -f /tmp/verif-cache-deep.json
  run_budgeted "verif_perf cold-cache" 600 \
    cargo run --release -p bench --bin verif_perf -- --json --cache /tmp/verif-cache-deep.json > /dev/null
fi

echo "ALL CHECKS PASSED"
